"""Experiment drivers: every table and figure runs and matches paper shapes."""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
)
from repro.model import CheckinType


class TestTable1:
    def test_rows(self, study):
        result = table1.run(study)
        primary_row = result.row("Primary")
        baseline_row = result.row("Baseline")
        assert primary_row.stats.n_users > baseline_row.stats.n_users
        # Primary users check in far more often than baseline volunteers.
        assert primary_row.checkins_per_user_day > 2 * baseline_row.checkins_per_user_day

    def test_rates_near_paper(self, study):
        result = table1.run(study)
        row = result.row("Primary")
        assert row.checkins_per_user_day == pytest.approx(4.1, rel=0.4)
        assert row.visits_per_user_day == pytest.approx(8.9, rel=0.4)
        assert row.gps_per_user_day == pytest.approx(750, rel=0.3)

    def test_unknown_row(self, study):
        with pytest.raises(KeyError):
            table1.run(study).row("nope")

    def test_format(self, study):
        text = table1.run(study).format_table()
        assert "Primary" in text and "Baseline" in text and "(paper)" in text


class TestFigure1:
    def test_shapes(self, study):
        result = figure1.run(study)
        assert result.n_checkins == result.n_honest + result.n_extraneous
        # Paper: ~75% extraneous, ~89% missing.
        assert 0.6 <= result.extraneous_fraction <= 0.9
        assert 0.8 <= result.missing_fraction <= 0.97
        assert result.coverage_fraction == pytest.approx(1 - result.missing_fraction)

    def test_format(self, study):
        assert "Figure 1" in figure1.run(study).format_report()


class TestFigure2:
    def test_agreements(self, study):
        result = figure2.run(study)
        # GPS curves coincide; honest matches baseline; all-checkin diverges.
        assert result.gps_agreement < 0.2
        assert result.honest_agreement < 0.3
        assert result.all_checkin_divergence > result.honest_agreement
        assert result.all_checkin_divergence > 0.3

    def test_all_series_present(self, study):
        result = figure2.run(study)
        assert set(result.curves) == set(figure2.SERIES)

    def test_format(self, study):
        assert "KS" in figure2.run(study).format_report()


class TestFigure3:
    def test_concentration(self, study):
        result = figure3.run(study)
        # A majority-ish of users have half their missing checkins at 5 POIs.
        assert result.users_half_covered_by_top5 > 0.35
        # Monotone medians.
        medians = [result.curve(n).median() for n in (1, 2, 3, 4, 5)]
        assert medians == sorted(medians)

    def test_format(self, study):
        assert "top-5" in figure3.run(study).format_report()


class TestFigure4:
    def test_routine_dominates(self, study):
        result = figure4.run(study)
        assert result.routine_share() > 0.6
        assert "Professional" in result.top3

    def test_shares_sum(self, study):
        result = figure4.run(study)
        assert sum(f for _, f in result.breakdown) == pytest.approx(1.0)

    def test_format(self, study):
        assert "Figure 4" in figure4.run(study).format_report()


class TestTable2:
    def test_key_cells(self, study):
        result = table2.run(study)
        assert result.get(CheckinType.REMOTE, "badges") > 0.3
        assert result.get(CheckinType.SUPERFLUOUS, "mayorships") > 0.1
        # The robust honest cells (badges, checkins/day); the remaining
        # cells are sampling noise at ~20 users.
        assert result.get(CheckinType.HONEST, "badges") < 0
        assert result.get(CheckinType.HONEST, "checkins_per_day") < 0

    def test_paper_reference(self, study):
        result = table2.run(study)
        assert result.paper(CheckinType.REMOTE, "badges") == 0.49

    def test_format(self, study):
        assert "(paper)" in table2.run(study).format_report()


class TestFigure5:
    def test_prevalence(self, study):
        result = figure5.run(study)
        assert result.users_with_any_extraneous > 0.8
        assert result.all_extraneous.quantile(0.8) > 0.5
        assert result.tradeoff.honest_lost > 0.2

    def test_format(self, study):
        assert "extraneous" in figure5.run(study).format_report()


class TestFigure6:
    def test_burstiness_ordering(self, study):
        result = figure6.run(study)
        one_min = result.fraction_within(CheckinType.REMOTE, 60.0)
        honest_10 = result.fraction_within(CheckinType.HONEST, 600.0)
        remote_10 = result.fraction_within(CheckinType.REMOTE, 600.0)
        superfluous_10 = result.fraction_within(CheckinType.SUPERFLUOUS, 600.0)
        # Paper: ~35% of extraneous within a minute; honest spread out.
        assert one_min > 0.2
        assert remote_10 > honest_10
        assert superfluous_10 > honest_10

    def test_format(self, study):
        assert "burstiness" in figure6.run(study).format_report()


class TestFigure7:
    def test_models_fit(self, study):
        result = figure7.run(study)
        assert set(result.models) == {"GPS", "All-Checkin", "Honest-Checkin"}
        # Honest-checkin motion is much slower than GPS ground truth.
        gps_speed = result.model("GPS").mean_speed(1000.0)
        honest_speed = result.model("Honest-Checkin").mean_speed(1000.0)
        assert honest_speed < 0.5 * gps_speed

    def test_all_checkin_has_more_short_flights(self, study):
        result = figure7.run(study)
        # Extraneous checkins add many short flights (superfluous bursts).
        assert result.model("All-Checkin").flight.xm <= result.model("GPS").flight.xm

    def test_pdf_curves(self, study):
        result = figure7.run(study)
        centers, density = result.flight_pdf("GPS")
        assert len(centers) == len(density)
        assert all(d >= 0 for d in density)
        centers, density = result.pause_pdf()
        assert len(centers) == len(density)

    def test_movement_time_curve(self, study):
        result = figure7.run(study)
        times = result.movement_time_curve("GPS", [100.0, 1000.0, 10000.0])
        assert times == sorted(times)

    def test_format(self, study):
        assert "Levy" in figure7.run(study).format_report()


class TestFigure2OtherMetrics:
    def test_full_metric_comparison_shape(self, study):
        """Section 4.1: 'the other metrics led to the same conclusions'."""
        comparison = figure2.full_metric_comparison(study)
        assert set(comparison) == {"gps_vs_gps", "honest_vs_baseline", "all_vs_honest"}
        for metrics in comparison.values():
            assert "interarrival" in metrics
            assert "displacement" in metrics
            assert "events_per_day" in metrics

    def test_divergence_ordering_holds_on_other_metrics(self, study):
        comparison = figure2.full_metric_comparison(study)
        # On event frequency the all-checkin trace diverges from the
        # honest subset far more than the two GPS traces diverge.
        assert (
            comparison["all_vs_honest"]["events_per_day"]
            > comparison["gps_vs_gps"]["events_per_day"]
        )
        # Inter-arrival tells the same story as the headline figure.
        assert (
            comparison["all_vs_honest"]["interarrival"]
            > comparison["gps_vs_gps"]["interarrival"]
        )
