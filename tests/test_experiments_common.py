"""Experiment context building."""

import pytest

from repro.experiments import StudyArtifacts, build_study, cached_study


def test_build_study_shapes(study):
    assert isinstance(study, StudyArtifacts)
    assert study.primary.name == "Primary"
    assert study.baseline.name == "Baseline"
    assert study.scale == 0.08


def test_reports_attached(study):
    assert study.primary_report.matching.n_checkins == len(study.primary.all_checkins)
    assert study.baseline_report.matching.n_checkins == len(
        study.baseline.all_checkins
    )


def test_visits_extracted_on_both(study):
    assert study.primary.has_visits()
    assert study.baseline.has_visits()


def test_baseline_population_smaller(study):
    assert len(study.baseline) < len(study.primary)


def test_baseline_mostly_honest(study):
    """The control group barely produces extraneous checkins."""
    matching = study.baseline_report.matching
    assert matching.extraneous_fraction() < 0.15


def test_cached_study_is_memoised():
    a = cached_study(0.05)
    b = cached_study(0.05)
    assert a is b


def test_build_study_deterministic():
    a = build_study(scale=0.03)
    b = build_study(scale=0.03)
    assert a.primary.stats() == b.primary.stats()
    assert a.primary_report.n_honest == b.primary_report.n_honest
