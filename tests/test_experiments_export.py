"""CSV export of every table/figure."""

import csv

import pytest

from repro.experiments.export import (
    export_all,
    export_figure1,
    export_figure2,
    export_figure7,
    export_table1,
    export_table2,
)


def read_csv(path):
    with path.open() as handle:
        return list(csv.reader(handle))


def test_table1_csv(tmp_path, study):
    [path] = export_table1(study, tmp_path)
    rows = read_csv(path)
    assert rows[0][0] == "dataset"
    assert {r[0] for r in rows[1:]} == {"Primary", "Baseline"}


def test_figure1_csv(tmp_path, study):
    [path] = export_figure1(study, tmp_path)
    rows = read_csv(path)
    regions = {r[0]: r for r in rows[1:]}
    assert set(regions) == {"honest", "extraneous", "missing"}
    assert int(regions["honest"][1]) > 0


def test_figure2_one_file_per_series(tmp_path, study):
    paths = export_figure2(study, tmp_path)
    assert len(paths) == 5
    for path in paths:
        rows = read_csv(path)
        assert rows[0] == ["x", "cdf"]
        cdf_values = [float(r[1]) for r in rows[1:]]
        assert cdf_values == sorted(cdf_values)
        assert cdf_values[-1] == 1.0


def test_table2_includes_paper_column(tmp_path, study):
    [path] = export_table2(study, tmp_path)
    rows = read_csv(path)
    assert rows[0] == ["checkin_type", "feature", "measured", "paper"]
    assert len(rows) == 1 + 16  # 4 types x 4 features


def test_figure7_fit_parameters(tmp_path, study):
    paths = export_figure7(study, tmp_path)
    fits = next(p for p in paths if p.name == "figure7_fits.csv")
    rows = read_csv(fits)
    assert {r[0] for r in rows[1:]} == {"GPS", "All-Checkin", "Honest-Checkin"}


def test_export_all_without_manet(tmp_path, study):
    paths = export_all(study, tmp_path / "out", include_manet=False)
    assert len(paths) >= 20
    for path in paths:
        assert path.exists()
        assert path.stat().st_size > 0
    names = {p.name for p in paths}
    assert "table1.csv" in names
    assert "figure4.csv" in names
    assert not any(name.startswith("figure8") for name in names)
