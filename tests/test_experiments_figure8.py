"""Figure 8 driver: MANET comparison across the three mobility models.

Separated from the other experiment tests because it runs three AODV
simulations (tens of seconds at the scaled bench configuration).
"""

from dataclasses import replace

import pytest

from repro.experiments import figure8
from repro.manet import bench_config
from repro.obs import fidelity


@pytest.fixture(scope="module")
def result(study):
    # Slightly denser than the bench arena: the tiny test-scale study
    # (~20 users) yields a noisier honest-checkin Levy fit, and a single
    # born-partitioned CBR pair would otherwise dominate the static
    # honest model's availability.
    config = replace(bench_config(), duration_s=1800.0, radio_range_m=1600.0)
    return figure8.run(study, config)


def test_three_models_simulated(result):
    assert set(result.results) == {"GPS", "All-Checkin", "Honest-Checkin"}


def test_paper_ordering_route_changes(result):
    """Honest-checkin routes change far less often than GPS ground truth."""
    assert result.median_route_changes("Honest-Checkin") < result.median_route_changes("GPS")


def test_paper_ordering_overhead(result):
    """Honest-checkin incurs much less routing overhead than GPS."""
    assert result.median_overhead("Honest-Checkin") < result.median_overhead("GPS")


def test_paper_ordering_availability(result):
    """Honest-checkin availability exceeds the GPS ground truth."""
    assert result.mean_availability("Honest-Checkin") > result.mean_availability("GPS")


def test_all_checkin_deviates_from_gps(result):
    """The all-checkin model does not reproduce ground-truth behaviour."""
    gps = result.result("GPS")
    all_checkin = result.result("All-Checkin")
    control_ratio = all_checkin.total_control / max(1, gps.total_control)
    changes_differ = (
        abs(result.median_route_changes("All-Checkin") - result.median_route_changes("GPS"))
        > 0.01
    )
    assert control_ratio > 1.2 or control_ratio < 0.8 or changes_differ


def test_flows_carried_traffic(result):
    for manet in result.results.values():
        delivered = sum(f.data_delivered for f in manet.flows)
        assert delivered > 0


def test_headline_within_fidelity_bands(result):
    """Post-fix Figure 8 ratios stay inside the paper's registry bands.

    Pins the simulation's qualitative behaviour after the AODV protocol
    fixes (own-RREQ suppression timestamp, stale-sequence resurrection):
    the headline ratios must not drift past the registry's fail
    tolerances, whichever engine produced them.
    """
    stats = result.headline()
    assert stats, "headline produced no figure8 statistics"
    card = fidelity.evaluate(stats)
    for name in stats:
        entry = card.entry(name)
        assert entry.status in ("pass", "warn"), (
            f"{name}: reproduced={entry.reproduced} status={entry.status}"
        )


def test_format(result):
    text = result.format_report()
    assert "Figure 8" in text
    assert "Honest-Checkin" in text


class TestMultiSeed:
    """``run_multi``: seed sweep statistics for the --seeds CLI knob."""

    # A short arena keeps the 2x3 extra simulations cheap; the multi
    # driver's statistics are seed bookkeeping, not MANET physics.
    CHEAP = dict(duration_s=300.0, radio_range_m=1600.0)

    @pytest.fixture(scope="class")
    def multi(self, study):
        config = replace(bench_config(), **self.CHEAP)
        return figure8.run_multi(study, config, seeds=2)

    def test_runs_consecutive_seeds(self, multi):
        base = bench_config().seed
        assert multi.seeds == [base, base + 1]
        assert len(multi.runs) == 2
        for run in multi.runs:
            assert set(run.results) == {"GPS", "All-Checkin", "Honest-Checkin"}

    def test_headline_means_per_seed_ratios(self, multi):
        stats = multi.headline()
        for key in (
            "figure8.honest_gps_route_change_ratio",
            "figure8.honest_gps_overhead_ratio",
            "figure8.honest_gps_availability_ratio",
        ):
            series = multi.ratio_series(key)
            assert len(series) == 2
            assert stats[key] == pytest.approx(sum(series) / len(series))

    def test_headline_reports_stability_band(self, multi):
        stats = multi.headline()
        series = multi.ratio_series("figure8.honest_gps_availability_ratio")
        band = stats["figure8.honest_gps_availability_ratio_band"]
        assert band == pytest.approx((max(series) - min(series)) / 2.0)
        assert band >= 0.0

    def test_single_seed_reproduces_run(self, study):
        config = replace(bench_config(), **self.CHEAP)
        single = figure8.run_multi(study, config, seeds=1)
        reference = figure8.run(study, config)
        assert single.runs[0].headline() == reference.headline()
        assert "_band" not in "".join(single.headline())

    def test_format_report(self, multi):
        text = multi.format_report()
        assert "across 2 seeds" in text
        assert "±" in text
        assert "paper orderings" in text

    def test_rejects_nonpositive_seeds(self, study):
        with pytest.raises(ValueError, match="seeds"):
            figure8.run_multi(study, seeds=0)
