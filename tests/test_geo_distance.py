"""Planar and spherical distance computations."""

import math

import numpy as np
import pytest

from repro.geo import (
    bearing,
    destination,
    euclidean,
    euclidean_many,
    haversine,
    haversine_many,
)


def test_euclidean_pythagoras():
    assert euclidean(0, 0, 3, 4) == 5.0


def test_euclidean_zero():
    assert euclidean(1.5, -2.5, 1.5, -2.5) == 0.0


def test_euclidean_many_matches_scalar():
    xs1 = np.array([0.0, 1.0])
    ys1 = np.array([0.0, 1.0])
    xs2 = np.array([3.0, 4.0])
    ys2 = np.array([4.0, 5.0])
    out = euclidean_many(xs1, ys1, xs2, ys2)
    for i in range(2):
        assert out[i] == pytest.approx(euclidean(xs1[i], ys1[i], xs2[i], ys2[i]))


def test_haversine_zero():
    assert haversine(34.4, -119.8, 34.4, -119.8) == 0.0


def test_haversine_one_degree_latitude():
    # One degree of latitude ≈ 111.2 km everywhere.
    d = haversine(10.0, 20.0, 11.0, 20.0)
    assert d == pytest.approx(111_195, rel=0.01)


def test_haversine_symmetry():
    a = haversine(34.4, -119.8, 34.5, -119.7)
    b = haversine(34.5, -119.7, 34.4, -119.8)
    assert a == pytest.approx(b)


def test_haversine_small_distance_matches_planar():
    # 100 m north of a reference point.
    lat0, lon0 = 34.0, -118.0
    dlat = 100.0 / 111_195
    d = haversine(lat0, lon0, lat0 + dlat, lon0)
    assert d == pytest.approx(100.0, rel=1e-3)


def test_haversine_many_matches_scalar():
    lats1 = np.array([34.0, 40.0])
    lons1 = np.array([-118.0, -74.0])
    lats2 = np.array([34.1, 40.1])
    lons2 = np.array([-118.1, -74.1])
    out = haversine_many(lats1, lons1, lats2, lons2)
    for i in range(2):
        assert out[i] == pytest.approx(
            haversine(lats1[i], lons1[i], lats2[i], lons2[i]), rel=1e-9
        )


def test_bearing_east():
    assert bearing(0, 0, 10, 0) == pytest.approx(0.0)


def test_bearing_north():
    assert bearing(0, 0, 0, 10) == pytest.approx(math.pi / 2)


def test_destination_roundtrip():
    x, y = destination(5.0, -3.0, 1.1, 250.0)
    assert euclidean(5.0, -3.0, x, y) == pytest.approx(250.0)
    assert bearing(5.0, -3.0, x, y) == pytest.approx(1.1)
