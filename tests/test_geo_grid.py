"""Grid spatial index."""

import math

import numpy as np
import pytest

from repro.geo import GridIndex


def test_empty_index():
    index = GridIndex(cell_size=100.0)
    assert len(index) == 0
    assert index.within(0, 0, 1000) == []
    assert index.nearest(0, 0) is None


def test_insert_and_len():
    index = GridIndex(cell_size=100.0)
    index.insert(0, 0, "a")
    index.insert(5000, 5000, "b")
    assert len(index) == 2


def test_within_radius():
    index = GridIndex(cell_size=100.0)
    index.insert(0, 0, "near")
    index.insert(150, 0, "mid")
    index.insert(1000, 0, "far")
    found = {item for _, item in index.within(0, 0, 200)}
    assert found == {"near", "mid"}


def test_within_is_inclusive_at_boundary():
    index = GridIndex(cell_size=100.0)
    index.insert(100, 0, "edge")
    assert {item for _, item in index.within(0, 0, 100)} == {"edge"}


def test_within_returns_distances():
    index = GridIndex(cell_size=50.0)
    index.insert(3, 4, "x")
    [(dist, item)] = index.within(0, 0, 10)
    assert item == "x"
    assert dist == pytest.approx(5.0)


def test_within_negative_radius_rejected():
    index = GridIndex(cell_size=100.0)
    with pytest.raises(ValueError):
        index.within(0, 0, -1)


def test_nearest_simple():
    index = GridIndex(cell_size=100.0)
    index.insert(10, 0, "a")
    index.insert(500, 0, "b")
    dist, item = index.nearest(0, 0)
    assert item == "a"
    assert dist == pytest.approx(10.0)


def test_nearest_respects_max_radius():
    index = GridIndex(cell_size=100.0)
    index.insert(500, 0, "b")
    assert index.nearest(0, 0, max_radius=100) is None


def test_nearest_crosses_cells():
    # The nearest point can be in a non-adjacent cell.
    index = GridIndex(cell_size=10.0)
    index.insert(95, 0, "far_in_cells")
    dist, item = index.nearest(0, 0)
    assert item == "far_in_cells"
    assert dist == pytest.approx(95.0)


def test_nearest_matches_bruteforce(rng):
    points = rng.uniform(0, 1000, size=(200, 2))
    index = GridIndex(cell_size=80.0)
    for i, (x, y) in enumerate(points):
        index.insert(float(x), float(y), i)
    for _ in range(25):
        qx, qy = rng.uniform(-100, 1100, size=2)
        dist, item = index.nearest(float(qx), float(qy))
        brute = min(
            (math.hypot(x - qx, y - qy), i) for i, (x, y) in enumerate(points)
        )
        assert dist == pytest.approx(brute[0])


def test_within_matches_bruteforce(rng):
    points = rng.uniform(0, 1000, size=(300, 2))
    index = GridIndex(cell_size=120.0)
    for i, (x, y) in enumerate(points):
        index.insert(float(x), float(y), i)
    for _ in range(25):
        qx, qy = rng.uniform(0, 1000, size=2)
        radius = float(rng.uniform(10, 400))
        got = sorted(item for _, item in index.within(float(qx), float(qy), radius))
        expected = sorted(
            i
            for i, (x, y) in enumerate(points)
            if math.hypot(x - qx, y - qy) <= radius
        )
        assert got == expected


def test_iteration_and_clear():
    index = GridIndex(cell_size=10.0)
    index.extend([(0, 0, "a"), (1, 1, "b")])
    assert sorted(item for _, _, item in index) == ["a", "b"]
    index.clear()
    assert len(index) == 0


def test_from_points():
    index = GridIndex.from_points([(0, 0, 1), (10, 10, 2)], cell_size=5.0)
    assert len(index) == 2


def test_rejects_bad_cell_size():
    with pytest.raises(ValueError):
        GridIndex(cell_size=0.0)


def test_bulk_extend_equivalent_to_per_point_insert(rng):
    points = rng.uniform(-500, 500, size=(250, 2))
    bulk = GridIndex(cell_size=80.0)
    bulk.extend([(float(x), float(y), i) for i, (x, y) in enumerate(points)])
    loop = GridIndex(cell_size=80.0)
    for i, (x, y) in enumerate(points):
        loop.insert(float(x), float(y), i)
    assert len(bulk) == len(loop) == 250
    for _ in range(20):
        qx, qy = (float(v) for v in rng.uniform(-600, 600, size=2))
        radius = float(rng.uniform(10, 300))
        assert sorted(bulk.within(qx, qy, radius)) == sorted(
            loop.within(qx, qy, radius)
        )
        assert bulk.nearest(qx, qy) == loop.nearest(qx, qy)


def test_within_many_matches_per_query_within(rng):
    index = GridIndex(cell_size=100.0)
    points = rng.uniform(0, 1000, size=(300, 2))
    index.extend([(float(x), float(y), i) for i, (x, y) in enumerate(points)])
    qx = [float(v) for v in rng.uniform(-100, 1100, size=30)]
    qy = [float(v) for v in rng.uniform(-100, 1100, size=30)]
    radius = 250.0
    batched = index.within_many(qx, qy, radius)
    assert len(batched) == 30
    for x, y, got in zip(qx, qy, batched):
        # Both are unordered candidate lists; compare as sorted pairs.
        assert sorted(got) == sorted(index.within(x, y, radius))


def test_within_many_cell_gather_path(rng):
    # Above the brute-force cutoff the batched query gathers neighbour
    # cells instead; results must not change.
    from repro.geo.grid import _BRUTE_FORCE_MAX

    n = _BRUTE_FORCE_MAX + 100
    points = rng.uniform(0, 5000, size=(n, 2))
    index = GridIndex(cell_size=150.0)
    index.extend([(float(x), float(y), i) for i, (x, y) in enumerate(points)])
    qx = [float(v) for v in rng.uniform(0, 5000, size=10)]
    qy = [float(v) for v in rng.uniform(0, 5000, size=10)]
    for x, y, got in zip(qx, qy, index.within_many(qx, qy, 400.0)):
        assert sorted(got) == sorted(index.within(x, y, 400.0))


def test_within_many_edge_cases():
    index = GridIndex(cell_size=100.0)
    assert index.within_many([], [], 50.0) == []
    assert index.within_many([0.0], [0.0], 50.0) == [[]]
    index.insert(10, 0, "a")
    assert index.within_many([], [], 50.0) == []
    with pytest.raises(ValueError):
        index.within_many([0.0, 1.0], [0.0], 50.0)
    with pytest.raises(ValueError):
        index.within_many([0.0], [0.0], -1.0)


def test_within_many_sees_writes_after_snapshot():
    index = GridIndex(cell_size=100.0)
    index.insert(0, 0, "a")
    assert [i for q in index.within_many([0.0], [0.0], 50.0) for _, i in q] == ["a"]
    index.insert(10, 0, "b")  # must invalidate the columnar snapshot
    found = {i for q in index.within_many([0.0], [0.0], 50.0) for _, i in q}
    assert found == {"a", "b"}
    index.clear()
    assert index.within_many([0.0], [0.0], 50.0) == [[]]


def test_nearest_ring_bound_after_spread_inserts():
    # The incremental bbox must keep nearest() correct when points land
    # in far-apart cells (max_ring is an overestimate, never too small).
    index = GridIndex(cell_size=10.0)
    index.insert(-2000, -2000, "sw")
    index.insert(1000, 500, "e")
    assert index.nearest(0, 0)[1] == "e"
    assert index.nearest(-1990, -1990)[1] == "sw"
    index.clear()
    index.insert(7, 7, "only")
    assert index.nearest(500, 500)[1] == "only"


class TestFromColumns:
    """Bulk columnar load: same answers as the bucket-first path."""

    def test_matches_from_points(self, rng):
        points = rng.uniform(-800, 800, size=(300, 2))
        triples = [(float(x), float(y), i) for i, (x, y) in enumerate(points)]
        bucket = GridIndex.from_points(triples, cell_size=90.0)
        columnar = GridIndex.from_columns(
            points[:, 0], points[:, 1], list(range(300)), cell_size=90.0
        )
        assert len(columnar) == len(bucket) == 300
        qx = [float(v) for v in rng.uniform(-900, 900, size=20)]
        qy = [float(v) for v in rng.uniform(-900, 900, size=20)]
        for a, b in zip(
            columnar.within_many(qx, qy, 200.0), bucket.within_many(qx, qy, 200.0)
        ):
            assert sorted(a) == sorted(b)
        for x, y in zip(qx, qy):
            assert sorted(columnar.within(x, y, 200.0)) == sorted(
                bucket.within(x, y, 200.0)
            )
            assert columnar.nearest(x, y) == bucket.nearest(x, y)

    def test_iteration_after_bulk_load(self):
        index = GridIndex.from_columns(
            [0.0, 10.0, 20.0], [0.0, 0.0, 0.0], ["a", "b", "c"], cell_size=5.0
        )
        assert sorted(item for _, _, item in index) == ["a", "b", "c"]

    def test_mutation_after_bulk_load(self):
        index = GridIndex.from_columns([0.0], [0.0], ["a"], cell_size=50.0)
        index.insert(10.0, 0.0, "b")
        assert len(index) == 2
        found = {i for q in index.within_many([0.0], [0.0], 50.0) for _, i in q}
        assert found == {"a", "b"}
        index.clear()
        assert len(index) == 0
        assert index.within_many([0.0], [0.0], 50.0) == [[]]

    def test_empty_and_invalid_inputs(self):
        index = GridIndex.from_columns([], [], [], cell_size=10.0)
        assert len(index) == 0
        assert index.within_many([0.0], [0.0], 5.0) == [[]]
        assert index.nearest(0.0, 0.0) is None
        with pytest.raises(ValueError, match="equal-length"):
            GridIndex.from_columns([0.0, 1.0], [0.0], [1, 2], cell_size=10.0)
        with pytest.raises(ValueError, match="items"):
            GridIndex.from_columns([0.0, 1.0], [0.0, 1.0], [1], cell_size=10.0)

    def test_cell_gather_path_after_bulk_load(self, rng):
        # Above the brute-force cutoff the lazily built span table backs
        # the batched query; answers must match per-query within().
        from repro.geo.grid import _BRUTE_FORCE_MAX

        n = _BRUTE_FORCE_MAX + 50
        points = rng.uniform(0, 5000, size=(n, 2))
        index = GridIndex.from_columns(
            points[:, 0], points[:, 1], list(range(n)), cell_size=150.0
        )
        qx = [float(v) for v in rng.uniform(0, 5000, size=6)]
        qy = [float(v) for v in rng.uniform(0, 5000, size=6)]
        for x, y, got in zip(qx, qy, index.within_many(qx, qy, 350.0)):
            assert sorted(got) == sorted(index.within(x, y, 350.0))

    def test_nearest_ring_bound_after_bulk_load(self):
        index = GridIndex.from_columns(
            [-2000.0, 1000.0], [-2000.0, 500.0], ["sw", "e"], cell_size=10.0
        )
        assert index.nearest(0, 0)[1] == "e"
        assert index.nearest(-1990, -1990)[1] == "sw"
