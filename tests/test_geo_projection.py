"""Local tangent-plane projection."""

import numpy as np
import pytest

from repro.geo import LocalProjection


@pytest.fixture
def proj():
    return LocalProjection(origin_lat=34.41, origin_lon=-119.85)  # Santa Barbara


def test_origin_maps_to_zero(proj):
    assert proj.to_plane(34.41, -119.85) == (pytest.approx(0.0), pytest.approx(0.0))


def test_roundtrip_exact(proj):
    lat, lon = proj.to_geo(1234.5, -678.9)
    x, y = proj.to_plane(lat, lon)
    assert x == pytest.approx(1234.5, abs=1e-6)
    assert y == pytest.approx(-678.9, abs=1e-6)


def test_north_is_positive_y(proj):
    _, y = proj.to_plane(34.42, -119.85)
    assert y > 0


def test_east_is_positive_x(proj):
    x, _ = proj.to_plane(34.41, -119.84)
    assert x > 0


def test_projection_error_small_at_city_scale(proj):
    # 20 km from the origin the equirectangular error stays well under
    # the paper's 500 m matching threshold.
    err = proj.projection_error(34.55, -119.70)
    assert err < 50.0


def test_vectorized_matches_scalar(proj):
    lats = np.array([34.42, 34.39])
    lons = np.array([-119.80, -119.90])
    xs, ys = proj.to_plane_many(lats, lons)
    for i in range(2):
        x, y = proj.to_plane(lats[i], lons[i])
        assert xs[i] == pytest.approx(x)
        assert ys[i] == pytest.approx(y)
    back_lat, back_lon = proj.to_geo_many(xs, ys)
    assert np.allclose(back_lat, lats)
    assert np.allclose(back_lon, lons)


def test_rejects_polar_origin():
    with pytest.raises(ValueError):
        LocalProjection(origin_lat=89.0, origin_lon=0.0)


def test_rejects_out_of_range_latitude():
    with pytest.raises(ValueError):
        LocalProjection(origin_lat=95.0, origin_lon=0.0)


def test_rejects_out_of_range_longitude():
    with pytest.raises(ValueError):
        LocalProjection(origin_lat=0.0, origin_lon=181.0)
