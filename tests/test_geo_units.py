"""Unit conversions."""

import pytest

from repro.geo import units


def test_minutes():
    assert units.minutes(6) == 360.0


def test_hours():
    assert units.hours(2) == 7200.0


def test_days():
    assert units.days(1) == 86400.0


def test_km():
    assert units.km(1.5) == 1500.0


def test_mph_is_meters_per_second():
    # 4 mph ≈ 1.79 m/s, the paper's driveby threshold.
    assert units.mph(4.0) == pytest.approx(1.78816, abs=1e-4)


def test_mph_roundtrip():
    assert units.to_mph(units.mph(37.2)) == pytest.approx(37.2)


def test_to_minutes_roundtrip():
    assert units.to_minutes(units.minutes(12.5)) == pytest.approx(12.5)


def test_to_km_roundtrip():
    assert units.to_km(units.km(3.25)) == pytest.approx(3.25)


def test_seconds_per_day_consistent():
    assert units.SECONDS_PER_DAY == 24 * units.SECONDS_PER_HOUR
