"""Golden regression fixture: frozen matching semantics.

The committed dataset under ``tests/data/golden_study/`` is a tiny
seeded synthetic study stored raw (no extracted visits); its expected
Figure-1 Venn counts and class breakdown live in ``expected.json``.
If any of these tests fail, the pipeline's *semantics* changed — either
fix the regression, or, when the change is intentional, regenerate the
fixture and commit it together with the change::

    PYTHONPATH=src python tests/data/regenerate_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import validate
from repro.io import load_dataset
from repro.model import CheckinType

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"


@pytest.fixture(scope="module")
def expected():
    return json.loads((GOLDEN_DIR / "expected.json").read_text(encoding="utf-8"))


def test_fixture_is_raw():
    # The whole point: extraction must run on load, so visits are not stored.
    assert not (GOLDEN_DIR / "visits.jsonl").exists()


def test_golden_venn_counts(expected):
    report = validate(load_dataset(GOLDEN_DIR))
    assert report.n_honest == expected["venn"]["honest"]
    assert report.n_extraneous == expected["venn"]["extraneous"]
    assert report.n_missing == expected["venn"]["missing"]
    assert report.matching.n_checkins == expected["n_checkins"]
    assert report.matching.n_visits == expected["n_visits"]


def test_golden_class_breakdown_and_summary(expected):
    report = validate(load_dataset(GOLDEN_DIR))
    counts = report.type_counts()
    assert {kind.value: counts[kind] for kind in CheckinType} == expected["type_counts"]
    assert report.summary() == expected["summary"]


def test_golden_parallel_matches_fixture(expected):
    # The runtime determinism guarantee, anchored to committed data.
    report = validate(load_dataset(GOLDEN_DIR), workers=2)
    assert report.n_honest == expected["venn"]["honest"]
    assert report.n_extraneous == expected["venn"]["extraneous"]
    assert report.n_missing == expected["venn"]["missing"]
    assert report.summary() == expected["summary"]
