"""Golden regression fixture: frozen matching semantics.

The committed dataset under ``tests/data/golden_study/`` is a tiny
seeded synthetic study stored raw (no extracted visits); its expected
Figure-1 Venn counts and class breakdown live in ``expected.json``.
If any of these tests fail, the pipeline's *semantics* changed — either
fix the regression, or, when the change is intentional, regenerate the
fixture and commit it together with the change::

    PYTHONPATH=src python tests/data/regenerate_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import validate
from repro.io import load_dataset
from repro.model import CheckinType

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"


@pytest.fixture(scope="module")
def expected():
    return json.loads((GOLDEN_DIR / "expected.json").read_text(encoding="utf-8"))


def test_fixture_is_raw():
    # The whole point: extraction must run on load, so visits are not stored.
    assert not (GOLDEN_DIR / "visits.jsonl").exists()


def test_golden_venn_counts(expected):
    report = validate(load_dataset(GOLDEN_DIR))
    assert report.n_honest == expected["venn"]["honest"]
    assert report.n_extraneous == expected["venn"]["extraneous"]
    assert report.n_missing == expected["venn"]["missing"]
    assert report.matching.n_checkins == expected["n_checkins"]
    assert report.matching.n_visits == expected["n_visits"]


def test_golden_class_breakdown_and_summary(expected):
    report = validate(load_dataset(GOLDEN_DIR))
    counts = report.type_counts()
    assert {kind.value: counts[kind] for kind in CheckinType} == expected["type_counts"]
    assert report.summary() == expected["summary"]


def test_golden_parallel_matches_fixture(expected):
    # The runtime determinism guarantee, anchored to committed data.
    report = validate(load_dataset(GOLDEN_DIR), workers=2)
    assert report.n_honest == expected["venn"]["honest"]
    assert report.n_extraneous == expected["venn"]["extraneous"]
    assert report.n_missing == expected["venn"]["missing"]
    assert report.summary() == expected["summary"]


def test_committed_reference_manifest_matches_fresh_run():
    # A fresh golden run must diff clean against the committed reference
    # manifest (the anchor `repro-study diff` CI auditing compares to);
    # stale references would mask — or falsely flag — semantic drift.
    from repro.obs import ObsContext, RunManifest, diff_manifests

    reference = RunManifest.load(GOLDEN_DIR / "reference.manifest.json")
    ctx = ObsContext()
    validate(load_dataset(GOLDEN_DIR), workers=2, obs=ctx)
    for name, value in ctx.metrics.snapshot()["counters"].items():
        assert reference.counter(name) == value or name.startswith("runtime."), (
            f"counter {name} drifted from the committed reference; "
            "regenerate via tests/data/regenerate_golden.py if intentional"
        )
    assert reference.scorecard["status"] == "pass"
    # Self-diff sanity: the reference never regresses against itself.
    assert not diff_manifests(reference, reference).has_regressions
