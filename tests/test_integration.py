"""Cross-module integration invariants on a small end-to-end study.

These tests cut across subsystem boundaries: generator → persistence →
pipeline → analyses → Levy → MANET, checking invariants no single-module
test can see.
"""

import math

import pytest

from repro.core import (
    checkin_metrics,
    extract_features,
    recover_dataset_events,
    truth_labels,
    visit_metrics,
)
from repro.io import load_dataset, save_dataset
from repro.model import CheckinType
from repro.core import validate


class TestPipelineConsistency:
    def test_labels_cover_exactly_the_checkins(self, primary, primary_report):
        label_ids = set(primary_report.classification.labels)
        checkin_ids = {c.checkin_id for c in primary.all_checkins}
        assert label_ids == checkin_ids

    def test_matching_and_classification_agree_on_honest(self, primary_report):
        matched = {c.checkin_id for c in primary_report.matching.honest_checkins}
        labelled_honest = {
            cid
            for cid, kind in primary_report.classification.labels.items()
            if kind is CheckinType.HONEST
        }
        assert matched == labelled_honest

    def test_every_visit_accounted_once(self, primary, primary_report):
        for data in primary.users.values():
            user_match = primary_report.matching.per_user[data.user_id]
            matched = {v.visit_id for _, v in user_match.matches}
            missing = {v.visit_id for v in user_match.missing}
            assert matched | missing == {v.visit_id for v in data.require_visits()}
            assert not matched & missing

    def test_matched_pairs_satisfy_thresholds(self, primary_report):
        config = primary_report.matching.config
        for checkin, visit in primary_report.matching.matched_pairs:
            assert checkin.user_id == visit.user_id
            distance = math.hypot(checkin.x - visit.x, checkin.y - visit.y)
            assert distance <= config.alpha_m
            assert visit.time_distance(checkin.t) <= config.beta_s


class TestPersistencePipelineEquivalence:
    def test_pipeline_equal_after_roundtrip(self, tmp_path, primary):
        """Validating a reloaded dataset reproduces the same Venn counts."""
        save_dataset(primary, tmp_path / "ds")
        reloaded = load_dataset(tmp_path / "ds")
        original = validate(primary)
        fresh = validate(reloaded)
        assert fresh.n_honest == original.n_honest
        assert fresh.n_extraneous == original.n_extraneous
        assert fresh.n_missing == original.n_missing


class TestTraceVariants:
    def test_honest_filtered_dataset_matches_honest_subset(self, primary, primary_report):
        """with_checkins_filtered(honest) == the matcher's honest list."""
        honest_ids = {c.checkin_id for c in primary_report.matching.honest_checkins}
        filtered = primary.with_checkins_filtered(
            lambda c: c.checkin_id in honest_ids, name="honest-only"
        )
        assert {c.checkin_id for c in filtered.all_checkins} == honest_ids

    def test_variant_event_counts_ordered(self, primary, primary_report):
        """visits > all checkins > honest checkins, per the paper's Venn."""
        n_visits = len(primary.all_visits)
        n_checkins = len(primary.all_checkins)
        n_honest = len(primary_report.matching.honest_checkins)
        assert n_visits > n_checkins > n_honest

    def test_recovered_events_superset_of_base(self, primary):
        recovered = recover_dataset_events(primary)
        for data in primary.users.values():
            assert len(recovered[data.user_id]) >= len(data.checkins)


class TestFeatureLabelAlignment:
    def test_features_exist_for_every_label(self, primary, primary_report):
        features = extract_features(primary.all_checkins)
        truth = truth_labels(primary_report.classification.labels)
        assert set(features) == set(truth)


class TestMetricSanity:
    def test_visit_metrics_denser_than_checkin_metrics(self, primary):
        """GPS visits happen far more often than checkins (missing mass)."""
        visits = visit_metrics(primary)
        checkins = checkin_metrics(primary)
        assert visits.events_per_day.median() > 1.5 * checkins.events_per_day.median()

    def test_intent_composition_matches_paper_story(self, primary):
        """Ground truth: honest intents are a minority of all checkins."""
        intents = [c.intent for c in primary.all_checkins]
        honest_share = intents.count(CheckinType.HONEST) / len(intents)
        assert 0.1 <= honest_share <= 0.4
