"""GeoJSON export."""

import json

import pytest

from repro.geo import LocalProjection, haversine
from repro.io.geojson import (
    DEFAULT_ANCHOR,
    checkin_features,
    dataset_to_geojson,
    poi_features,
    save_geojson,
    visit_features,
)
from repro.model import CheckinType, PoiCategory
from helpers import make_checkin, make_dataset, make_poi, make_user, make_visit


@pytest.fixture
def projection():
    return LocalProjection(*DEFAULT_ANCHOR)


def test_poi_feature_shape(projection):
    [feature] = poi_features([make_poi("p0", 100, 200, PoiCategory.ARTS)], projection)
    assert feature["type"] == "Feature"
    assert feature["geometry"]["type"] == "Point"
    assert feature["properties"]["category"] == "Arts"
    lon, lat = feature["geometry"]["coordinates"]
    assert -180 <= lon <= 180 and -90 <= lat <= 90


def test_coordinates_roundtrip_distance(projection):
    """A POI 1 km east projects to a lat/lon 1 km from the anchor."""
    [feature] = poi_features([make_poi("p0", 1000, 0)], projection)
    lon, lat = feature["geometry"]["coordinates"]
    assert haversine(*DEFAULT_ANCHOR, lat, lon) == pytest.approx(1000, rel=0.01)


def test_checkin_features_include_intent(projection):
    checkins = [
        make_checkin("c0", intent=CheckinType.REMOTE),
        make_checkin("c1"),
    ]
    features = checkin_features(checkins, projection)
    assert features[0]["properties"]["intent"] == "remote"
    assert "intent" not in features[1]["properties"]


def test_visit_features(projection):
    [feature] = visit_features([make_visit("v0", poi_id="p0")], projection)
    assert feature["properties"]["kind"] == "visit"
    assert feature["properties"]["poi_id"] == "p0"


def test_dataset_collection_counts():
    user = make_user(
        "u0",
        checkins=[make_checkin("c0")],
        visits=[make_visit("v0")],
    )
    dataset = make_dataset([user], pois=[make_poi("p0")])
    collection = dataset_to_geojson(dataset)
    kinds = [f["properties"]["kind"] for f in collection["features"]]
    assert kinds.count("poi") == 1
    assert kinds.count("checkin") == 1
    assert kinds.count("visit") == 1


def test_visits_skipped_when_not_extracted():
    user = make_user("u0", checkins=[make_checkin("c0")])
    dataset = make_dataset([user], pois=[make_poi("p0")])
    collection = dataset_to_geojson(dataset)
    kinds = {f["properties"]["kind"] for f in collection["features"]}
    assert "visit" not in kinds


def test_save_geojson_valid_json(tmp_path):
    user = make_user("u0", checkins=[make_checkin("c0")], visits=[])
    dataset = make_dataset([user], pois=[make_poi("p0")])
    path = save_geojson(dataset, tmp_path / "deep" / "study.geojson")
    parsed = json.loads(path.read_text())
    assert parsed["type"] == "FeatureCollection"


def test_custom_anchor():
    user = make_user("u0", checkins=[make_checkin("c0", x=0, y=0)], visits=[])
    dataset = make_dataset([user], pois=[make_poi("p0")])
    collection = dataset_to_geojson(dataset, anchor=(48.85, 2.35))  # Paris
    lon, lat = collection["features"][0]["geometry"]["coordinates"]
    assert lat == pytest.approx(48.85, abs=0.01)
    assert lon == pytest.approx(2.35, abs=0.01)
