"""JSON-lines dataset persistence."""

import json

import pytest

from repro.io import load_dataset, save_dataset
from repro.model import CheckinType, PoiCategory
from helpers import (
    make_checkin,
    make_dataset,
    make_poi,
    make_user,
    make_visit,
    stationary_gps,
)


@pytest.fixture
def dataset():
    pois = [
        make_poi("p0", 0, 0, PoiCategory.FOOD),
        make_poi("p1", 100, 200, PoiCategory.SHOP),
    ]
    users = [
        make_user(
            "u0",
            gps=stationary_gps(0, 0, 0, 300),
            checkins=[
                make_checkin("c0", "u0", "p0", t=60, intent=CheckinType.HONEST),
                make_checkin("c1", "u0", "p1", x=100, y=200, t=120,
                             category=PoiCategory.SHOP),
            ],
            visits=[make_visit("v0", "u0", poi_id="p0")],
        ),
        make_user("u1", gps=[], checkins=[], visits=[]),
    ]
    return make_dataset(users, pois=pois, name="roundtrip")


def test_roundtrip_exact(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert loaded.name == "roundtrip"
    assert set(loaded.pois) == {"p0", "p1"}
    assert set(loaded.users) == {"u0", "u1"}
    original = dataset.users["u0"]
    restored = loaded.users["u0"]
    assert restored.profile == original.profile
    assert restored.gps == original.gps
    assert restored.checkins == original.checkins
    assert restored.visits == original.visits
    # Intent labels survive the round trip (compare= is False on intent).
    assert restored.checkins[0].intent is CheckinType.HONEST
    assert restored.checkins[1].intent is None


def test_roundtrip_without_visits(tmp_path, dataset):
    for user in dataset.users.values():
        user.visits = None
    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert not (tmp_path / "ds" / "visits.jsonl").exists()
    assert all(u.visits is None for u in loaded.users.values())


def test_missing_file_raises(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    (tmp_path / "ds" / "checkins.jsonl").unlink()
    with pytest.raises(FileNotFoundError, match="checkins.jsonl"):
        load_dataset(tmp_path / "ds")


def test_corrupt_json_reports_line(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    path = tmp_path / "ds" / "pois.jsonl"
    path.write_text(path.read_text() + "{not json\n")
    with pytest.raises(ValueError, match="invalid JSON"):
        load_dataset(tmp_path / "ds")


def test_unknown_user_reference_rejected(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    path = tmp_path / "ds" / "gps.jsonl"
    with path.open("a") as handle:
        handle.write(json.dumps({"user_id": "ghost", "t": 0, "x": 0, "y": 0}) + "\n")
    with pytest.raises(ValueError, match="unknown user"):
        load_dataset(tmp_path / "ds")


def test_blank_lines_tolerated(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    path = tmp_path / "ds" / "profiles.jsonl"
    path.write_text(path.read_text() + "\n\n")
    loaded = load_dataset(tmp_path / "ds")
    assert len(loaded.users) == 2


def test_save_creates_directory(tmp_path, dataset):
    target = tmp_path / "deep" / "nested" / "ds"
    save_dataset(dataset, target)
    assert (target / "meta.json").exists()


def test_synthetic_roundtrip(tmp_path, primary):
    """The generated study survives persistence byte-for-value."""
    save_dataset(primary, tmp_path / "primary")
    loaded = load_dataset(tmp_path / "primary")
    assert loaded.stats() == primary.stats()
    user_id = next(iter(primary.users))
    assert loaded.users[user_id].checkins == primary.users[user_id].checkins
