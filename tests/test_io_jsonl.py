"""JSON-lines dataset persistence."""

import json

import numpy as np
import pytest

from repro.io import load_dataset, save_dataset
from repro.model import CheckinType, PoiCategory, as_trace
from helpers import (
    make_checkin,
    make_dataset,
    make_poi,
    make_user,
    make_visit,
    stationary_gps,
)


@pytest.fixture
def dataset():
    pois = [
        make_poi("p0", 0, 0, PoiCategory.FOOD),
        make_poi("p1", 100, 200, PoiCategory.SHOP),
    ]
    users = [
        make_user(
            "u0",
            gps=stationary_gps(0, 0, 0, 300),
            checkins=[
                make_checkin("c0", "u0", "p0", t=60, intent=CheckinType.HONEST),
                make_checkin("c1", "u0", "p1", x=100, y=200, t=120,
                             category=PoiCategory.SHOP),
            ],
            visits=[make_visit("v0", "u0", poi_id="p0")],
        ),
        make_user("u1", gps=[], checkins=[], visits=[]),
    ]
    return make_dataset(users, pois=pois, name="roundtrip")


def test_roundtrip_exact(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert loaded.name == "roundtrip"
    assert set(loaded.pois) == {"p0", "p1"}
    assert set(loaded.users) == {"u0", "u1"}
    original = dataset.users["u0"]
    restored = loaded.users["u0"]
    assert restored.profile == original.profile
    assert restored.gps == original.gps
    assert restored.checkins == original.checkins
    assert restored.visits == original.visits
    # Intent labels survive the round trip (compare= is False on intent).
    assert restored.checkins[0].intent is CheckinType.HONEST
    assert restored.checkins[1].intent is None


def test_roundtrip_without_visits(tmp_path, dataset):
    for user in dataset.users.values():
        user.visits = None
    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert not (tmp_path / "ds" / "visits.jsonl").exists()
    assert all(u.visits is None for u in loaded.users.values())


def test_missing_file_raises(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    (tmp_path / "ds" / "checkins.jsonl").unlink()
    with pytest.raises(FileNotFoundError, match="checkins.jsonl"):
        load_dataset(tmp_path / "ds")


def test_corrupt_json_reports_line(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    path = tmp_path / "ds" / "pois.jsonl"
    path.write_text(path.read_text() + "{not json\n")
    with pytest.raises(ValueError, match="invalid JSON"):
        load_dataset(tmp_path / "ds")


def test_unknown_user_reference_rejected(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    path = tmp_path / "ds" / "gps.jsonl"
    with path.open("a") as handle:
        handle.write(json.dumps({"user_id": "ghost", "t": 0, "x": 0, "y": 0}) + "\n")
    with pytest.raises(ValueError, match="unknown user"):
        load_dataset(tmp_path / "ds")


def test_blank_lines_tolerated(tmp_path, dataset):
    save_dataset(dataset, tmp_path / "ds")
    path = tmp_path / "ds" / "profiles.jsonl"
    path.write_text(path.read_text() + "\n\n")
    loaded = load_dataset(tmp_path / "ds")
    assert len(loaded.users) == 2


def test_save_creates_directory(tmp_path, dataset):
    target = tmp_path / "deep" / "nested" / "ds"
    save_dataset(dataset, target)
    assert (target / "meta.json").exists()


def test_synthetic_roundtrip(tmp_path, primary):
    """The generated study survives persistence byte-for-value."""
    save_dataset(primary, tmp_path / "primary")
    loaded = load_dataset(tmp_path / "primary")
    assert loaded.stats() == primary.stats()
    user_id = next(iter(primary.users))
    assert loaded.users[user_id].checkins == primary.users[user_id].checkins


# ---------------------------------------------------------------------------
# Streaming loaders (out-of-core path)
# ---------------------------------------------------------------------------


def raw_dataset(dataset):
    """The fixture dataset without extracted visits (a raw study)."""
    for user in dataset.users.values():
        user.visits = None
    return dataset


def test_iter_user_data_round_trip(tmp_path, dataset):
    from repro.io import iter_user_data

    save_dataset(raw_dataset(dataset), tmp_path / "ds")
    streamed = list(iter_user_data(tmp_path / "ds"))
    assert [u.user_id for u in streamed] == list(dataset.users)
    for user in streamed:
        original = dataset.users[user.user_id]
        assert user.profile == original.profile
        assert user.gps == as_trace(original.gps)
        assert user.checkins == original.checkins
        assert user.visits is None


def test_iter_user_data_refuses_extracted_visits(tmp_path, dataset):
    from repro.io import iter_user_data

    save_dataset(dataset, tmp_path / "ds")  # fixture has visits
    with pytest.raises(ValueError, match="visits"):
        next(iter_user_data(tmp_path / "ds"))


def test_iter_user_data_rejects_ungrouped_files(tmp_path):
    from repro.io import iter_user_data

    users = [
        make_user("u0", gps=stationary_gps(0, 0, 0, 120)),
        make_user("u1", gps=stationary_gps(5, 5, 0, 120)),
    ]
    save_dataset(make_dataset(users, name="g"), tmp_path / "ds")
    gps_path = tmp_path / "ds" / "gps.jsonl"
    lines = gps_path.read_text().splitlines(keepends=True)
    # Move u0's first sample behind u1's block: still valid records, no
    # longer grouped in profile order.
    gps_path.write_text("".join(lines[1:] + lines[:1]))
    with pytest.raises(ValueError, match="grouped"):
        list(iter_user_data(tmp_path / "ds"))


def test_iter_user_data_rejects_unknown_user(tmp_path, dataset):
    from repro.io import iter_user_data

    save_dataset(raw_dataset(dataset), tmp_path / "ds")
    with (tmp_path / "ds" / "checkins.jsonl").open("a") as handle:
        record = {"checkin_id": "cx", "user_id": "ghost", "poi_id": "p0",
                  "x": 0, "y": 0, "t": 0, "category": "food"}
        handle.write(json.dumps(record) + "\n")
    with pytest.raises(ValueError, match="ghost"):
        list(iter_user_data(tmp_path / "ds"))


def test_load_dataset_into_store_round_trip(tmp_path, dataset):
    from repro.io import load_dataset_into_store

    save_dataset(raw_dataset(dataset), tmp_path / "ds")
    store = load_dataset_into_store(tmp_path / "ds", tmp_path / "store",
                                    segment_users=1)
    assert store.name == "roundtrip"
    assert len(store.segments) == len(dataset.users)
    loaded = store.load_dataset()
    assert set(loaded.pois) == set(dataset.pois)
    for user_id, original in dataset.users.items():
        assert loaded.users[user_id].gps == as_trace(original.gps)
        assert loaded.users[user_id].checkins == original.checkins


def test_load_dataset_bounds_gps_list_overhead(tmp_path):
    """Loading GPS must not materialise the whole column as Python lists.

    The regression: ``load_dataset`` once accumulated every sample of
    every user in flat Python float lists (~an order of magnitude larger
    than the final arrays).  The streaming rewrite keeps only the
    current user's run as lists, so peak allocation during the GPS pass
    stays within a small multiple of the final array payload.
    """
    import tracemalloc

    from repro.model import GpsTrace
    from helpers import make_user

    n_users, n_samples = 20, 2_000
    users = []
    for i in range(n_users):
        t = np.arange(n_samples) * 60.0
        users.append(make_user(f"u{i:03d}",
                               gps=GpsTrace(t, t + 0.25, t - 0.25)))
    save_dataset(make_dataset(users, name="big"), tmp_path / "big")

    tracemalloc.start()
    loaded = load_dataset(tmp_path / "big")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    payload = 3 * 8 * n_users * n_samples  # the loaded float64 columns
    # One user's run as Python lists costs ~32x its array form; the
    # whole-study-as-lists bug cost ~11x payload overall.  4x payload
    # gives the streaming loader headroom without readmitting the bug.
    assert peak < 4 * payload, f"peak {peak} vs payload {payload}"
    assert all(len(u.gps) == n_samples for u in loaded.users.values())
