"""SNAP (Gowalla/Brightkite) checkin-format loader."""

import pytest

from repro.io.snap import load_snap_checkins, parse_snap_line

SAMPLE = """\
0\t2010-10-19T23:55:27Z\t30.2359091167\t-97.7951395833\t22847
0\t2010-10-18T22:17:43Z\t30.2691029532\t-97.7493953705\t420315
1\t2010-10-17T23:42:03Z\t30.2557309927\t-97.7633857727\t316637

1\t2010-10-17T19:26:05Z\t30.2634181234\t-97.7575966669\t16516
"""


@pytest.fixture
def snap_file(tmp_path):
    path = tmp_path / "gowalla.txt"
    path.write_text(SAMPLE, encoding="utf-8")
    return path


class TestParseLine:
    def test_parses_fields(self):
        user, t, lat, lon, loc = parse_snap_line(
            "7\t2010-10-19T23:55:27Z\t30.1\t-97.7\t99"
        )
        assert user == "7"
        assert lat == 30.1
        assert lon == -97.7
        assert loc == "99"
        assert t > 1_287_000_000  # October 2010

    def test_blank_line(self):
        assert parse_snap_line("   \n") is None

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="5 tab-separated"):
            parse_snap_line("1\t2\t3")


class TestLoadDataset:
    def test_loads_users_and_checkins(self, snap_file):
        dataset = load_snap_checkins(snap_file, name="gowalla-sample")
        assert dataset.name == "gowalla-sample"
        assert set(dataset.users) == {"0", "1"}
        assert len(dataset.all_checkins) == 4
        assert len(dataset.pois) == 4

    def test_time_rebased_and_sorted(self, snap_file):
        dataset = load_snap_checkins(snap_file)
        times = [c.t for c in dataset.all_checkins]
        assert min(times) == 0.0
        for user in dataset.users.values():
            user_times = [c.t for c in user.checkins]
            assert user_times == sorted(user_times)

    def test_coordinates_projected_to_meters(self, snap_file):
        """Austin checkins a few km apart project to a few thousand metres."""
        dataset = load_snap_checkins(snap_file)
        xs = [c.x for c in dataset.all_checkins]
        ys = [c.y for c in dataset.all_checkins]
        assert max(xs) - min(xs) < 20_000
        assert max(ys) - min(ys) < 20_000
        assert max(abs(v) for v in xs + ys) < 50_000

    def test_max_records(self, snap_file):
        dataset = load_snap_checkins(snap_file, max_records=2)
        assert len(dataset.all_checkins) == 2

    def test_no_gps_no_visits(self, snap_file):
        dataset = load_snap_checkins(snap_file)
        for user in dataset.users.values():
            assert user.gps == []
            assert user.visits is None

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(ValueError, match="no checkin records"):
            load_snap_checkins(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\t2010-10-19T23:55:27Z\t30.0\t-97.0\t1\nbroken\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_snap_checkins(path)

    def test_trace_only_tooling_runs(self, snap_file):
        """The paper's trace-only analyses work on a SNAP dataset as-is."""
        from repro.core import BurstinessDetector, extract_features, interarrival_times

        dataset = load_snap_checkins(snap_file)
        features = extract_features(dataset.all_checkins)
        predictions = BurstinessDetector().predict_many(features.values())
        assert len(predictions) == 4
        assert interarrival_times(dataset.all_checkins)
