"""Random-waypoint baseline mobility."""

import numpy as np
import pytest

from repro.levy import RandomWaypointConfig, generate_rwp_fleet, generate_rwp_trace


@pytest.fixture
def config():
    return RandomWaypointConfig(speed_range=(2.0, 10.0), pause_range=(0.0, 60.0))


def test_covers_duration(config, rng):
    trace = generate_rwp_trace(config, 5000.0, 3600.0, rng)
    assert trace.t_end >= 3600.0


def test_stays_in_arena(config, rng):
    trace = generate_rwp_trace(config, 5000.0, 7200.0, rng)
    for w in trace.waypoints:
        assert 0.0 <= w.x <= 5000.0
        assert 0.0 <= w.y <= 5000.0


def test_speeds_in_range(config, rng):
    trace = generate_rwp_trace(config, 5000.0, 7200.0, rng)
    for a, b in zip(trace.waypoints, trace.waypoints[1:]):
        dt = b.t - a.t
        if dt <= 0:
            continue
        dist = np.hypot(b.x - a.x, b.y - a.y)
        if dist == 0:
            continue  # pause
        speed = dist / dt
        assert 2.0 * 0.99 <= speed <= 10.0 * 1.01


def test_node_keeps_moving(config, rng):
    """Random waypoint has no heavy pause tail — the node roams the arena."""
    trace = generate_rwp_trace(config, 5000.0, 7200.0, rng)
    xs = [w.x for w in trace.waypoints]
    assert max(xs) - min(xs) > 1000.0


def test_fleet(config, rng):
    fleet = generate_rwp_fleet(config, 5, 5000.0, 600.0, rng)
    assert len(fleet) == 5
    assert fleet[0].position_at(0) != fleet[1].position_at(0)


def test_deterministic(config):
    a = generate_rwp_trace(config, 5000.0, 600.0, np.random.default_rng(3))
    b = generate_rwp_trace(config, 5000.0, 600.0, np.random.default_rng(3))
    assert a.waypoints == b.waypoints


def test_zero_pause_allowed(rng):
    config = RandomWaypointConfig(pause_range=(0.0, 0.0))
    trace = generate_rwp_trace(config, 2000.0, 600.0, rng)
    assert trace.t_end >= 600.0


def test_validation():
    with pytest.raises(ValueError):
        RandomWaypointConfig(speed_range=(0.0, 1.0))
    with pytest.raises(ValueError):
        RandomWaypointConfig(pause_range=(-1.0, 1.0))
    config = RandomWaypointConfig()
    with pytest.raises(ValueError):
        generate_rwp_trace(config, 0.0, 100.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        generate_rwp_fleet(config, 0, 100.0, 100.0, np.random.default_rng(0))


def test_works_with_manet():
    """RWP traces plug straight into the AODV simulator."""
    from repro.manet import ManetConfig, Simulator

    rng = np.random.default_rng(5)
    config = ManetConfig(
        n_nodes=10, arena_m=3000.0, radio_range_m=1200.0, n_pairs=3,
        duration_s=300.0, seed=5,
    )
    fleet = generate_rwp_fleet(RandomWaypointConfig(), 10, 3000.0, 300.0, rng)
    results = Simulator(config, fleet, name="rwp").run()
    assert sum(f.data_delivered for f in results.flows) > 0
