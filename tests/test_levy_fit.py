"""Levy-walk model fitting."""

import pytest

from repro.levy import (
    FlightSample,
    fit_from_checkins,
    fit_from_dataset_visits,
    fit_levy_model,
    fit_three_models,
    flights_from_checkins,
    flights_from_visits,
)
from repro.stats import ParetoFit
from helpers import make_checkin, make_visit


class TestFlightExtraction:
    def test_flights_from_visits(self):
        visits = {
            "u0": [
                make_visit("v0", x=0, t_start=0, t_end=600),
                make_visit("v1", x=1000, t_start=1200, t_end=2400),
                make_visit("v2", x=1000, y=3000, t_start=3000, t_end=3600),
            ]
        }
        sample = flights_from_visits(visits)
        assert sample.distances == [1000.0, 3000.0]
        assert sample.times == [600.0, 600.0]
        assert sample.pauses == [600.0, 1200.0, 600.0]

    def test_tiny_hops_skipped(self):
        visits = {
            "u0": [
                make_visit("v0", x=0, t_start=0, t_end=600),
                make_visit("v1", x=20, t_start=1200, t_end=1800),
            ]
        }
        sample = flights_from_visits(visits)
        assert sample.distances == []

    def test_flights_from_checkins_gap_cap(self):
        checkins = [
            make_checkin("c0", x=0, t=0),
            make_checkin("c1", x=1000, t=600),
            make_checkin("c2", x=5000, t=600 + 9 * 3600),  # 9 h gap: skipped
        ]
        sample = flights_from_checkins(checkins)
        assert sample.distances == [1000.0]
        assert sample.pauses == []

    def test_checkin_users_isolated(self):
        checkins = [
            make_checkin("c0", user_id="a", x=0, t=0),
            make_checkin("c1", user_id="b", x=9000, t=60),
        ]
        assert flights_from_checkins(checkins).distances == []

    def test_mismatched_sample_rejected(self):
        with pytest.raises(ValueError):
            FlightSample(distances=[1.0], times=[], pauses=[])


class TestModelFitting:
    def test_needs_enough_flights(self):
        sample = FlightSample(distances=[100.0] * 5, times=[60.0] * 5, pauses=[60.0] * 5)
        with pytest.raises(ValueError, match="at least 10"):
            fit_levy_model("x", sample)

    def test_fits_and_describes(self, rng):
        flight = ParetoFit(xm=100, alpha=1.5, n=0)
        pause = ParetoFit(xm=60, alpha=0.8, n=0)
        ds = flight.sample(rng, 500)
        ts = 3.0 * ds**0.6
        sample = FlightSample(list(ds), list(ts), list(pause.sample(rng, 500)))
        model = fit_levy_model("test", sample)
        assert model.flight.alpha == pytest.approx(1.5, rel=0.15)
        assert model.rho == pytest.approx(0.4, abs=0.02)
        assert "test" in model.describe()

    def test_pause_fallback_used(self, rng):
        flight = ParetoFit(xm=100, alpha=1.5, n=0)
        ds = flight.sample(rng, 100)
        sample = FlightSample(list(ds), list(3.0 * ds**0.6), [])
        fallback = ParetoFit(xm=42.0, alpha=1.1, n=9)
        model = fit_levy_model("x", sample, pause_fallback=fallback)
        assert model.pause is fallback

    def test_no_pause_no_fallback_raises(self, rng):
        flight = ParetoFit(xm=100, alpha=1.5, n=0)
        ds = flight.sample(rng, 100)
        sample = FlightSample(list(ds), list(ds), [])
        with pytest.raises(ValueError, match="no pause"):
            fit_levy_model("x", sample)

    def test_movement_time_positive(self, rng):
        flight = ParetoFit(xm=100, alpha=1.5, n=0)
        ds = flight.sample(rng, 200)
        sample = FlightSample(list(ds), list(2.0 * ds**0.5), list(ds))
        model = fit_levy_model("x", sample)
        assert model.movement_time(1000.0) > 0
        assert model.mean_speed(1000.0) > 0
        with pytest.raises(ValueError):
            model.movement_time(0.0)


class TestStudyFits:
    def test_three_models(self, study):
        gps, all_model, honest_model = fit_three_models(
            study.primary, study.primary_report.matching.honest_checkins
        )
        assert gps.name == "GPS"
        assert all_model.name == "All-Checkin"
        assert honest_model.name == "Honest-Checkin"
        # Checkin models borrow the GPS pause fit.
        assert all_model.pause == gps.pause
        assert honest_model.pause == gps.pause

    def test_honest_model_is_slower(self, study):
        """The key Figure 7 consequence: checkin-trained motion is slow."""
        gps, _, honest_model = fit_three_models(
            study.primary, study.primary_report.matching.honest_checkins
        )
        assert honest_model.mean_speed(1000.0) < 0.5 * gps.mean_speed(1000.0)

    def test_fit_from_dataset_visits(self, primary):
        model = fit_from_dataset_visits(primary)
        assert model.n_flights > 100
        assert model.flight.alpha > 0

    def test_fit_from_checkins(self, study):
        gps = fit_from_dataset_visits(study.primary)
        model = fit_from_checkins(study.primary.all_checkins, gps, "All")
        assert model.name == "All"
        assert model.n_flights > 50
