"""Synthetic Levy-walk trace generation."""

import numpy as np
import pytest

from repro.levy import NodeTrace, Waypoint, generate_fleet, generate_node_trace
from repro.levy.generate import MAX_SPEED, MIN_PAUSE_S, _reflect
from repro.stats import ParetoFit
from repro.levy.fit import LevyWalkModel


@pytest.fixture
def model():
    return LevyWalkModel(
        name="test",
        flight=ParetoFit(xm=200.0, alpha=1.4, n=100),
        pause=ParetoFit(xm=120.0, alpha=0.9, n=100),
        k=3.0,
        rho=0.4,
        n_flights=100,
    )


class TestReflect:
    def test_inside_unchanged(self):
        assert _reflect(500.0, 1000.0) == 500.0

    def test_reflects_over_edge(self):
        assert _reflect(1100.0, 1000.0) == 900.0

    def test_reflects_below_zero(self):
        assert _reflect(-100.0, 1000.0) == 100.0

    def test_multiple_folds(self):
        assert _reflect(2300.0, 1000.0) == pytest.approx(300.0)

    def test_boundaries(self):
        assert _reflect(0.0, 1000.0) == 0.0
        assert _reflect(1000.0, 1000.0) == 1000.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            _reflect(1.0, 0.0)


class TestNodeTrace:
    def test_interpolation(self):
        trace = NodeTrace([Waypoint(0, 0, 0), Waypoint(10, 100, 0)])
        assert trace.position_at(5) == (50.0, 0.0)

    def test_clamped_outside(self):
        trace = NodeTrace([Waypoint(0, 0, 0), Waypoint(10, 100, 0)])
        assert trace.position_at(-5) == (0.0, 0.0)
        assert trace.position_at(50) == (100.0, 0.0)

    def test_vectorised(self):
        trace = NodeTrace([Waypoint(0, 0, 0), Waypoint(10, 100, 200)])
        xs, ys = trace.positions_at(np.array([0.0, 5.0, 10.0]))
        assert list(xs) == [0.0, 50.0, 100.0]
        assert list(ys) == [0.0, 100.0, 200.0]

    def test_rejects_unordered(self):
        with pytest.raises(ValueError):
            NodeTrace([Waypoint(10, 0, 0), Waypoint(0, 0, 0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NodeTrace([])


class TestGeneration:
    def test_covers_duration(self, model, rng):
        trace = generate_node_trace(model, 10_000.0, 3600.0, rng)
        assert trace.t_end >= 3600.0

    def test_stays_in_arena(self, model, rng):
        trace = generate_node_trace(model, 5000.0, 7200.0, rng)
        for w in trace.waypoints:
            assert 0.0 <= w.x <= 5000.0
            assert 0.0 <= w.y <= 5000.0

    def test_speeds_clamped(self, model, rng):
        trace = generate_node_trace(model, 10_000.0, 7200.0, rng)
        for a, b in zip(trace.waypoints, trace.waypoints[1:]):
            if b.t == a.t:
                continue
            dist = np.hypot(b.x - a.x, b.y - a.y)
            speed = dist / (b.t - a.t)
            assert speed <= MAX_SPEED * 1.01

    def test_alternates_pause_and_flight(self, model, rng):
        trace = generate_node_trace(model, 10_000.0, 7200.0, rng)
        pauses = 0
        for a, b in zip(trace.waypoints, trace.waypoints[1:]):
            if (a.x, a.y) == (b.x, b.y) and b.t - a.t >= MIN_PAUSE_S:
                pauses += 1
        assert pauses >= 1

    def test_fleet_size(self, model, rng):
        fleet = generate_fleet(model, 7, 5000.0, 600.0, rng)
        assert len(fleet) == 7

    def test_fleet_nodes_differ(self, model, rng):
        fleet = generate_fleet(model, 2, 5000.0, 600.0, rng)
        assert fleet[0].position_at(0) != fleet[1].position_at(0)

    def test_fleet_rejects_zero_nodes(self, model, rng):
        with pytest.raises(ValueError):
            generate_fleet(model, 0, 5000.0, 600.0, rng)

    def test_deterministic(self, model):
        a = generate_node_trace(model, 5000.0, 600.0, np.random.default_rng(1))
        b = generate_node_trace(model, 5000.0, 600.0, np.random.default_rng(1))
        assert a.waypoints == b.waypoints

    def test_slow_model_barely_moves(self, rng):
        slow = LevyWalkModel(
            name="slow",
            flight=ParetoFit(xm=100.0, alpha=2.0, n=10),
            pause=ParetoFit(xm=3600.0, alpha=3.0, n=10),
            k=500.0,
            rho=0.3,
            n_flights=10,
        )
        trace = generate_node_trace(slow, 10_000.0, 3600.0, rng)
        x0, y0 = trace.position_at(0)
        x1, y1 = trace.position_at(3600)
        assert np.hypot(x1 - x0, y1 - y0) < 2500.0
