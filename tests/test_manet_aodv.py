"""AODV node-level protocol behaviour."""

import pytest

from repro.manet import (
    AodvNode,
    DataPacket,
    ManetConfig,
    MetricsCollector,
    Rerr,
    Rrep,
    Rreq,
)


@pytest.fixture
def config():
    return ManetConfig(n_nodes=5, n_pairs=1, arena_m=1000, radio_range_m=100,
                       duration_s=10, seed=1)


@pytest.fixture
def metrics():
    return MetricsCollector({0: (0, 4)})


def make_node(node_id, config, metrics):
    return AodvNode(node_id, config, metrics)


def outbox_payloads(node):
    return [m.payload for m in node.outbox]


class TestRouteDiscovery:
    def test_data_without_route_triggers_rreq(self, config, metrics):
        node = make_node(0, config, metrics)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.originate_data(packet, now=0.0)
        [rreq] = outbox_payloads(node)
        assert isinstance(rreq, Rreq)
        assert rreq.dest == 4
        assert rreq.origin == 0
        assert node.outbox[0].is_broadcast

    def test_data_with_route_forwards(self, config, metrics):
        node = make_node(0, config, metrics)
        node.table.update(4, next_hop=2, hop_count=2, dest_seq=1, now=0.0)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.originate_data(packet, now=0.0)
        [message] = node.outbox
        assert message.to == 2
        assert message.payload is packet
        assert packet.hop_count == 1

    def test_destination_replies(self, config, metrics):
        node = make_node(4, config, metrics)
        rreq = Rreq(origin=0, origin_seq=1, rreq_id=1, dest=4, dest_seq=0,
                    hop_count=1, ttl=10, pair_id=0)
        node.receive(rreq, sender=3, now=0.0)
        replies = [p for p in outbox_payloads(node) if isinstance(p, Rrep)]
        assert len(replies) == 1
        assert replies[0].origin == 0
        assert replies[0].dest == 4
        # Reverse route towards the originator was installed.
        assert node.table.usable(0, 0.0).next_hop == 3

    def test_intermediate_rebroadcasts(self, config, metrics):
        node = make_node(2, config, metrics)
        rreq = Rreq(origin=0, origin_seq=1, rreq_id=1, dest=4, dest_seq=0,
                    hop_count=0, ttl=10, pair_id=0)
        node.receive(rreq, sender=0, now=0.0)
        forwarded = [p for p in outbox_payloads(node) if isinstance(p, Rreq)]
        assert len(forwarded) == 1
        assert forwarded[0].hop_count == 1
        assert forwarded[0].ttl == 9

    def test_duplicate_rreq_suppressed(self, config, metrics):
        node = make_node(2, config, metrics)
        rreq = Rreq(origin=0, origin_seq=1, rreq_id=1, dest=4, dest_seq=0,
                    hop_count=0, ttl=10)
        node.receive(rreq, sender=0, now=0.0)
        node.outbox.clear()
        node.receive(rreq, sender=1, now=0.0)
        assert not [p for p in outbox_payloads(node) if isinstance(p, Rreq)]

    def test_ttl_zero_not_rebroadcast(self, config, metrics):
        node = make_node(2, config, metrics)
        rreq = Rreq(origin=0, origin_seq=1, rreq_id=1, dest=4, dest_seq=0,
                    hop_count=5, ttl=0)
        node.receive(rreq, sender=0, now=0.0)
        assert not [p for p in outbox_payloads(node) if isinstance(p, Rreq)]

    def test_own_rreq_echo_suppressed_after_seen_ttl_epoch(self, config, metrics):
        """A node must not re-process the echo of its own flood.

        Regression: ``_send_rreq`` used to record the suppression entry
        with timestamp 0.0, so any RREQ sent after ``rreq_seen_ttl_s``
        of simulated time had its entry purged on the next ``tick()``
        housekeeping pass — the originator then re-broadcast its own
        returning RREQ and installed a bogus reverse route to itself.
        """
        node = make_node(0, config, metrics)
        late = config.rreq_seen_ttl_s + 70.0  # well past the seen TTL
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.originate_data(packet, now=late)
        [sent] = [p for p in outbox_payloads(node) if isinstance(p, Rreq)]
        node.outbox.clear()
        node.tick(now=late + 1.0)  # housekeeping must keep the fresh entry
        node.outbox.clear()
        # The flood's echo returns two hops later via neighbor 1.
        node.receive(sent.forwarded().forwarded(), sender=1, now=late + 2.0)
        assert not [p for p in outbox_payloads(node) if isinstance(p, Rreq)]
        assert node.table.get(0) is None  # no reverse route to ourselves

    def test_own_rreq_suppression_expires_with_real_timestamp(self, config, metrics):
        node = make_node(0, config, metrics)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.originate_data(packet, now=5.0)
        [sent] = [p for p in outbox_payloads(node) if isinstance(p, Rreq)]
        assert sent.key() in node._seen_rreqs
        assert node._seen_rreqs[sent.key()] == 5.0
        node.tick(now=5.0 + config.rreq_seen_ttl_s + 1.5)
        assert sent.key() not in node._seen_rreqs

    def test_intermediate_with_fresh_route_replies(self, config, metrics):
        node = make_node(2, config, metrics)
        node.table.update(4, next_hop=3, hop_count=1, dest_seq=7, now=0.0)
        rreq = Rreq(origin=0, origin_seq=1, rreq_id=1, dest=4, dest_seq=5,
                    hop_count=0, ttl=10)
        node.receive(rreq, sender=0, now=0.0)
        payloads = outbox_payloads(node)
        assert any(isinstance(p, Rrep) for p in payloads)
        assert not any(isinstance(p, Rreq) for p in payloads)


class TestRrepHandling:
    def test_originator_installs_route_and_flushes(self, config, metrics):
        node = make_node(0, config, metrics)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.originate_data(packet, now=0.0)
        node.outbox.clear()
        rrep = Rrep(dest=4, dest_seq=2, origin=0, hop_count=1, pair_id=0)
        node.receive(rrep, sender=1, now=0.0)
        node.tick(now=1.0)
        # Buffered packet flushed towards next hop 1.
        data = [m for m in node.outbox if isinstance(m.payload, DataPacket)]
        assert len(data) == 1
        assert data[0].to == 1

    def test_relay_forwards_rrep_on_reverse_route(self, config, metrics):
        node = make_node(2, config, metrics)
        # Reverse route to originator 0 via node 1.
        node.table.update(0, next_hop=1, hop_count=1, dest_seq=1, now=0.0)
        rrep = Rrep(dest=4, dest_seq=2, origin=0, hop_count=0)
        node.receive(rrep, sender=3, now=0.0)
        forwarded = [m for m in node.outbox if isinstance(m.payload, Rrep)]
        assert len(forwarded) == 1
        assert forwarded[0].to == 1
        assert forwarded[0].payload.hop_count == 1
        # Forward route to 4 installed via sender 3.
        assert node.table.usable(4, 0.0).next_hop == 3

    def test_rrep_without_reverse_route_dropped(self, config, metrics):
        node = make_node(2, config, metrics)
        rrep = Rrep(dest=4, dest_seq=2, origin=0, hop_count=0)
        node.receive(rrep, sender=3, now=0.0)
        assert not [m for m in node.outbox if isinstance(m.payload, Rrep)]


class TestDataPlane:
    def test_destination_counts_delivery(self, config, metrics):
        node = make_node(4, config, metrics)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0, hop_count=3)
        node.receive(packet, sender=3, now=0.0)
        assert metrics.flows[0].data_delivered == 1
        assert metrics.flows[0].hop_counts == [3]

    def test_relay_without_route_sends_rerr(self, config, metrics):
        node = make_node(2, config, metrics)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.receive(packet, sender=1, now=0.0)
        rerrs = [m for m in node.outbox if isinstance(m.payload, Rerr)]
        assert len(rerrs) == 1
        assert rerrs[0].to == 1
        assert 4 in rerrs[0].payload.unreachable
        assert metrics.flows[0].data_dropped == 1


class TestLinkFailure:
    def test_unicast_failure_invalidates_and_rerrs(self, config, metrics):
        node = make_node(2, config, metrics)
        node.table.update(4, next_hop=3, hop_count=1, dest_seq=1, now=0.0)
        node.table.update(5, next_hop=3, hop_count=2, dest_seq=1, now=0.0)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.on_unicast_failed(packet, next_hop=3, now=0.0)
        assert node.table.usable(4, 0.0) is None
        assert node.table.usable(5, 0.0) is None
        rerrs = [p for p in outbox_payloads(node) if isinstance(p, Rerr)]
        assert rerrs and set(rerrs[0].unreachable) == {4, 5}
        # A relay drops the packet.
        assert metrics.flows[0].data_dropped == 1

    def test_source_rebuffers_on_failure(self, config, metrics):
        node = make_node(0, config, metrics)
        node.table.update(4, next_hop=3, hop_count=1, dest_seq=1, now=0.0)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.on_unicast_failed(packet, next_hop=3, now=0.0)
        assert metrics.flows[0].data_dropped == 0
        rreqs = [p for p in outbox_payloads(node) if isinstance(p, Rreq)]
        assert len(rreqs) == 1

    def test_rerr_propagates_to_precursors(self, config, metrics):
        node = make_node(2, config, metrics)
        node.table.update(4, next_hop=3, hop_count=1, dest_seq=1, now=0.0)
        node.table.add_precursor(4, 1)
        node.receive(Rerr(unreachable={4: 2}), sender=3, now=0.0)
        assert node.table.usable(4, 0.0) is None
        rerrs = [p for p in outbox_payloads(node) if isinstance(p, Rerr)]
        assert len(rerrs) == 1

    def test_rerr_from_wrong_neighbor_ignored(self, config, metrics):
        node = make_node(2, config, metrics)
        node.table.update(4, next_hop=3, hop_count=1, dest_seq=1, now=0.0)
        node.receive(Rerr(unreachable={4: 2}), sender=9, now=0.0)
        assert node.table.usable(4, 0.0) is not None


class TestDiscoveryLifecycle:
    def test_retry_then_drop(self, config, metrics):
        node = make_node(0, config, metrics)
        packet = DataPacket(flow_id=0, src=0, dst=4, seq=1, created_tick=0)
        node.originate_data(packet, now=0.0)
        rreq_count = sum(1 for p in outbox_payloads(node) if isinstance(p, Rreq))
        node.outbox.clear()
        now = 0.0
        for _ in range(20):
            now += config.discovery_timeout_s * 8
            node.tick(now)
            rreq_count += sum(
                1 for p in outbox_payloads(node) if isinstance(p, Rreq)
            )
            node.outbox.clear()
        assert rreq_count == 1 + config.rreq_retries
        assert metrics.flows[0].data_dropped == 1

    def test_buffer_overflow_drops(self, config, metrics):
        node = make_node(0, config, metrics)
        for seq in range(config.buffer_limit + 5):
            node.originate_data(
                DataPacket(flow_id=0, src=0, dst=4, seq=seq, created_tick=0), now=0.0
            )
        assert metrics.flows[0].data_dropped == 5
