"""MANET engine + AODV integration on controlled topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.levy import NodeTrace, Waypoint
from repro.manet import ManetConfig, Simulator, make_cbr_pairs
import numpy as np


def static_trace(x, y):
    return NodeTrace([Waypoint(0.0, x, y)])


def line_config(n_nodes, **overrides):
    defaults = dict(
        n_nodes=n_nodes,
        arena_m=100_000.0,
        radio_range_m=1000.0,
        n_pairs=1,
        duration_s=120.0,
        dt_s=1.0,
        cbr_interval_s=5.0,
        seed=3,
    )
    defaults.update(overrides)
    return ManetConfig(**defaults)


def run_line(n_nodes, spacing=800.0, pairs=None, duration=120.0):
    """Static chain 0-1-...-n with one flow from node 0 to the last node."""
    config = line_config(n_nodes, duration_s=duration)
    traces = [static_trace(i * spacing, 0.0) for i in range(n_nodes)]
    pairs = pairs if pairs is not None else {0: (0, n_nodes - 1)}
    sim = Simulator(config, traces, pairs=pairs)
    return sim.run()


class TestStaticTopologies:
    def test_single_hop_delivery(self):
        results = run_line(2)
        flow = results.flows[0]
        assert flow.data_delivered > 0
        assert flow.data_delivered >= flow.data_sent - 3  # discovery warm-up
        assert flow.hop_counts and set(flow.hop_counts) == {1}

    def test_multi_hop_delivery(self):
        results = run_line(5)
        flow = results.flows[0]
        assert flow.data_delivered > 0
        assert set(flow.hop_counts) == {4}

    def test_partitioned_pair_never_delivers(self):
        config = line_config(2)
        traces = [static_trace(0, 0), static_trace(50_000, 0)]
        sim = Simulator(config, traces, pairs={0: (0, 1)})
        results = sim.run()
        flow = results.flows[0]
        assert flow.data_delivered == 0
        assert flow.availability_ratio() == 0.0
        assert flow.data_dropped > 0

    def test_availability_high_once_route_exists(self):
        results = run_line(3, duration=300.0)
        flow = results.flows[0]
        assert flow.availability_ratio() > 0.9

    def test_control_packets_counted(self):
        results = run_line(4)
        assert results.total_control > 0
        flow = results.flows[0]
        # The initial discovery floods are attributed to the only flow.
        assert flow.control_transmissions > 0

    def test_route_changes_minimal_when_static(self):
        results = run_line(4, duration=600.0)
        flow = results.flows[0]
        # One initial establishment; maybe a refresh after timeout.
        assert flow.route_changes <= 3

    def test_two_flows_share_network(self):
        results = run_line(4, pairs={0: (0, 3), 1: (3, 0)}, duration=200.0)
        for flow in results.flows:
            assert flow.data_delivered > 0


class TestMobileTopologies:
    def test_link_break_detected_and_rerouted(self):
        """Node 1 walks away mid-run; 0→2 reroutes via node 3."""
        config = line_config(4, duration_s=400.0)
        traces = [
            static_trace(0, 0),
            NodeTrace(
                [Waypoint(0, 800, 0), Waypoint(100, 800, 0), Waypoint(130, 800, 30_000)]
            ),
            static_trace(1600, 0),
            static_trace(800, 600),  # alternative relay, always in range
        ]
        sim = Simulator(config, traces, pairs={0: (0, 2)})
        results = sim.run()
        flow = results.flows[0]
        assert flow.route_changes >= 2  # establish, break, re-establish
        assert flow.data_delivered > 30
        # Deliveries continue in the second half of the run.
        assert flow.availability_ratio() > 0.5

    def test_disconnection_drops_packets(self):
        config = line_config(2, duration_s=300.0)
        traces = [
            static_trace(0, 0),
            NodeTrace([Waypoint(0, 800, 0), Waypoint(50, 800, 0), Waypoint(80, 50_000, 0)]),
        ]
        sim = Simulator(config, traces, pairs={0: (0, 1)})
        results = sim.run()
        flow = results.flows[0]
        assert flow.data_delivered > 0  # before the move
        assert flow.data_dropped > 0  # after it


class TestEngineValidation:
    def test_trace_count_mismatch(self):
        config = line_config(3)
        with pytest.raises(ValueError, match="node traces"):
            Simulator(config, [static_trace(0, 0)])

    def test_make_cbr_pairs_distinct(self):
        pairs = make_cbr_pairs(10, 20, np.random.default_rng(0))
        assert len(pairs) == 20
        assert len(set(pairs.values())) == 20
        for src, dst in pairs.values():
            assert src != dst

    def test_make_cbr_pairs_rejects_impossible_request(self):
        """Regression: the rejection-sampling loop used to never return."""
        with pytest.raises(ValueError, match="combinations"):
            make_cbr_pairs(3, 7, np.random.default_rng(0))
        with pytest.raises(ValueError, match="2 nodes"):
            make_cbr_pairs(1, 1, np.random.default_rng(0))

    def test_make_cbr_pairs_exhaustive_request_terminates(self):
        # Exactly every ordered pair: the hardest satisfiable case.
        pairs = make_cbr_pairs(4, 12, np.random.default_rng(7))
        assert sorted(pairs.values()) == sorted(
            (s, d) for s in range(4) for d in range(4) if s != d
        )

    @settings(max_examples=60, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=6),
        n_pairs=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_make_cbr_pairs_terminates_or_raises(self, n_nodes, n_pairs, seed):
        """Every (n_nodes, n_pairs) request either satisfies or raises."""
        rng = np.random.default_rng(seed)
        limit = n_nodes * (n_nodes - 1)
        if n_pairs > limit:
            with pytest.raises(ValueError):
                make_cbr_pairs(n_nodes, n_pairs, rng)
            return
        pairs = make_cbr_pairs(n_nodes, n_pairs, rng)
        assert len(pairs) == n_pairs
        assert len(set(pairs.values())) == n_pairs
        assert sorted(pairs) == list(range(n_pairs))
        for src, dst in pairs.values():
            assert 0 <= src < n_nodes and 0 <= dst < n_nodes and src != dst

    def test_config_validates_pair_bound(self):
        with pytest.raises(ValueError, match="combinations"):
            ManetConfig(n_nodes=3, n_pairs=7)
        # The boundary itself is legal.
        ManetConfig(n_nodes=3, n_pairs=6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ManetConfig(n_nodes=1)
        with pytest.raises(ValueError):
            ManetConfig(n_nodes=2, n_pairs=3)
        with pytest.raises(ValueError):
            ManetConfig(dt_s=0)

    def test_n_ticks(self):
        config = line_config(2, duration_s=120.0, dt_s=2.0)
        assert config.n_ticks == 60
