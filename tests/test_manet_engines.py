"""Scalar vs vectorized MANET engines: exact (byte-level) parity.

The vectorized engine must reproduce the scalar reference *exactly* —
same per-flow counters, same summary strings, same control totals — for
any configuration and seed.  Mirrors ``test_visits_kernels.py``: the
scalar engine is the semantic reference; the vectorized engine is the
one production uses (``engine="auto"``).

Dense and sparse arenas exercise different code paths (broadcast-heavy
floods vs mostly-empty air with the per-tick index build skipped), so
both are covered.  Paper-scale parity lives in the slow tier.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.geo import units
from repro.levy import LevyWalkModel, generate_fleet
from repro.manet import (
    ENGINES,
    ManetConfig,
    Simulator,
    bench_config,
    make_cbr_pairs,
    paper_config,
    resolved_engine,
    run_model,
    scaled_config,
)
from repro.stats import ParetoFit


def toy_model(name: str = "toy") -> LevyWalkModel:
    return LevyWalkModel(
        name=name,
        flight=ParetoFit(xm=300.0, alpha=1.3, n=50),
        pause=ParetoFit(xm=120.0, alpha=0.9, n=50),
        k=2.0,
        rho=0.4,
        n_flights=50,
    )


def run_engine(config: ManetConfig, engine: str):
    """One full simulation; returns everything results depend on."""
    config = replace(config, engine=engine)
    rng = np.random.default_rng(config.seed)
    traces = generate_fleet(
        toy_model(), config.n_nodes, config.arena_m, config.duration_s, rng
    )
    pairs = make_cbr_pairs(
        config.n_nodes, config.n_pairs, np.random.default_rng(config.seed)
    )
    sim = Simulator(config, traces, pairs=pairs)
    results = sim.run()
    return results, sim.metrics.total_control, sim.metrics.unattributed_control


def assert_engines_identical(config: ManetConfig) -> None:
    scalar, s_control, s_unattr = run_engine(config, "scalar")
    vector, v_control, v_unattr = run_engine(config, "vectorized")
    # Dataclass dict equality compares every counter exactly.
    assert [asdict(f) for f in vector.flows] == [asdict(f) for f in scalar.flows]
    assert vector.summary() == scalar.summary()
    assert v_control == s_control
    assert v_unattr == s_unattr


def test_engine_knob_validation():
    assert set(ENGINES) == {"auto", "vectorized", "scalar"}
    assert resolved_engine(ManetConfig()) == "vectorized"
    assert resolved_engine(ManetConfig(engine="auto")) == "vectorized"
    assert resolved_engine(ManetConfig(engine="scalar")) == "scalar"
    with pytest.raises(ValueError):
        ManetConfig(engine="simd")


def test_scaled_config_preserves_density():
    base = bench_config()
    big = scaled_config(1000)
    assert big.n_nodes == 1000
    base_density = base.n_nodes / base.arena_m**2
    big_density = big.n_nodes / big.arena_m**2
    assert big_density == pytest.approx(base_density, rel=1e-9)
    assert big.n_pairs == round(base.n_pairs * 1000 / base.n_nodes)
    # Still a valid config (pair bound, geometry).
    assert scaled_config(10).n_nodes == 10


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_parity_dense_bench(seed):
    """Dense arena: flood-heavy air, the within_many broadcast path."""
    config = replace(bench_config(seed=seed), duration_s=300.0)
    assert_engines_identical(config)


@pytest.mark.parametrize("seed", [1, 5])
def test_parity_sparse_arena(seed):
    """Sparse arena: mostly-empty air, index builds skipped, unicast
    failures and RERR feedback exercised by nodes drifting apart."""
    config = ManetConfig(
        n_nodes=40,
        arena_m=units.km(30),
        radio_range_m=units.km(1.5),
        n_pairs=20,
        duration_s=600.0,
        seed=seed,
    )
    assert_engines_identical(config)


def test_parity_tiny_arena():
    """Tiny fully-connected arena: every broadcast reaches everyone."""
    config = ManetConfig(
        n_nodes=12,
        arena_m=units.km(3),
        radio_range_m=units.km(1.2),
        n_pairs=6,
        duration_s=240.0,
        seed=3,
    )
    assert_engines_identical(config)


def test_parity_expanding_ring():
    """Expanding-ring search changes flood TTL handling; parity holds."""
    config = replace(
        bench_config(seed=11), duration_s=300.0, expanding_ring=True
    )
    assert_engines_identical(config)


def test_run_model_engine_override():
    """The runner's engine override reproduces the config knob exactly."""
    config = replace(bench_config(), duration_s=120.0)
    via_param = run_model(toy_model(), config, engine="scalar")
    via_config = run_model(toy_model(), replace(config, engine="scalar"))
    assert via_param.summary() == via_config.summary()


@pytest.mark.slow
def test_parity_paper_scale():
    """The paper's 200-node, 100 km arena, full hour."""
    assert_engines_identical(paper_config())


@pytest.mark.slow
def test_parity_large_n():
    """1000-node bench-density arena (shortened)."""
    config = replace(scaled_config(1000), duration_s=300.0)
    assert_engines_identical(config)
