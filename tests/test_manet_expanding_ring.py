"""AODV expanding-ring search option."""

import pytest

from repro.levy import NodeTrace, Waypoint
from repro.manet import (
    AodvNode,
    DataPacket,
    ManetConfig,
    MetricsCollector,
    Rreq,
    Simulator,
)


def ring_config(**overrides):
    defaults = dict(
        n_nodes=6, arena_m=100_000.0, radio_range_m=1000.0, n_pairs=1,
        duration_s=120.0, dt_s=1.0, cbr_interval_s=5.0, seed=3,
        expanding_ring=True, ring_start_ttl=2,
    )
    defaults.update(overrides)
    return ManetConfig(**defaults)


def first_rreq(node):
    return next(m.payload for m in node.outbox if isinstance(m.payload, Rreq))


def test_initial_ttl_is_small():
    config = ring_config()
    node = AodvNode(0, config, MetricsCollector({0: (0, 5)}))
    node.originate_data(DataPacket(flow_id=0, src=0, dst=5, seq=1, created_tick=0), 0.0)
    assert first_rreq(node).ttl == 2


def test_retry_escalates_ttl():
    config = ring_config()
    node = AodvNode(0, config, MetricsCollector({0: (0, 5)}))
    node.originate_data(DataPacket(flow_id=0, src=0, dst=5, seq=1, created_tick=0), 0.0)
    node.outbox.clear()
    node.tick(now=config.discovery_timeout_s * 4)
    assert first_rreq(node).ttl == 4
    node.outbox.clear()
    node.tick(now=config.discovery_timeout_s * 40)
    assert first_rreq(node).ttl == 8


def test_ttl_capped_at_network_diameter():
    config = ring_config(ring_start_ttl=25, rreq_ttl=30)
    node = AodvNode(0, config, MetricsCollector({0: (0, 5)}))
    node.originate_data(DataPacket(flow_id=0, src=0, dst=5, seq=1, created_tick=0), 0.0)
    node.outbox.clear()
    node.tick(now=config.discovery_timeout_s * 4)
    assert first_rreq(node).ttl == 30


def test_disabled_by_default():
    config = ManetConfig(n_nodes=6, n_pairs=1)
    node = AodvNode(0, config, MetricsCollector({0: (0, 5)}))
    node.originate_data(DataPacket(flow_id=0, src=0, dst=5, seq=1, created_tick=0), 0.0)
    assert first_rreq(node).ttl == config.rreq_ttl


def line_traces(n, spacing=800.0):
    return [NodeTrace([Waypoint(0.0, i * spacing, 0.0)]) for i in range(n)]


def test_nearby_destination_still_found():
    """A 2-hop destination is reachable within the initial ring."""
    config = ring_config(duration_s=200.0)
    sim = Simulator(config, line_traces(6), pairs={0: (0, 2)})
    results = sim.run()
    assert results.flows[0].data_delivered > 20


def test_far_destination_found_after_escalation():
    """A 5-hop destination needs TTL escalation but is eventually reached."""
    config = ring_config(duration_s=300.0)
    sim = Simulator(config, line_traces(6), pairs={0: (0, 5)})
    results = sim.run()
    assert results.flows[0].data_delivered > 10


def test_ring_reduces_control_for_near_pairs():
    """Expanding ring floods fewer transmissions for short routes."""
    pairs = {0: (0, 2)}
    base = Simulator(
        ring_config(expanding_ring=False, duration_s=200.0),
        line_traces(6),
        pairs=pairs,
    ).run()
    ring = Simulator(
        ring_config(expanding_ring=True, duration_s=200.0),
        line_traces(6),
        pairs=pairs,
    ).run()
    assert ring.total_control <= base.total_control
