"""MANET metric collection and aggregation."""

import pytest

from repro.manet import FlowStats, ManetResults, MetricsCollector


@pytest.fixture
def collector():
    return MetricsCollector({0: (0, 1), 1: (2, 3)})


def test_control_attribution(collector):
    collector.count_control(0)
    collector.count_control(0)
    collector.count_control(None)
    collector.count_control(99)  # unknown pair -> unattributed
    assert collector.flows[0].control_transmissions == 2
    assert collector.unattributed_control == 2
    assert collector.total_control == 4


def test_data_counters(collector):
    collector.data_sent(0)
    collector.data_delivered(0, hop_count=3)
    collector.data_dropped(1)
    assert collector.flows[0].data_sent == 1
    assert collector.flows[0].data_delivered == 1
    assert collector.flows[0].hop_counts == [3]
    assert collector.flows[1].data_dropped == 1


def test_route_sampling(collector):
    collector.sample_route(0, available=True, changed=True)
    collector.sample_route(0, available=True, changed=False)
    collector.sample_route(0, available=False, changed=True)
    stats = collector.flows[0]
    assert stats.availability_samples == 3
    assert stats.availability_hits == 2
    assert stats.route_changes == 2
    assert stats.availability_ratio() == pytest.approx(2 / 3)


def test_flow_stats_defaults():
    stats = FlowStats(flow_id=0, src=0, dst=1)
    assert stats.availability_ratio() == 0.0
    assert stats.overhead_per_data_packet() == 0.0
    assert stats.delivery_ratio() == 0.0


def test_overhead_per_packet():
    stats = FlowStats(flow_id=0, src=0, dst=1, control_transmissions=30, data_delivered=10)
    assert stats.overhead_per_data_packet() == 3.0


def make_results():
    flows = [
        FlowStats(flow_id=0, src=0, dst=1, route_changes=6, availability_samples=10,
                  availability_hits=9, control_transmissions=20, data_delivered=10,
                  data_sent=12),
        FlowStats(flow_id=1, src=2, dst=3, route_changes=0, availability_samples=10,
                  availability_hits=0, control_transmissions=5, data_delivered=0,
                  data_sent=12),
    ]
    return ManetResults(
        name="test", flows=flows, duration_s=120.0, total_control=25,
        unattributed_control=0,
    )


def test_route_changes_per_minute():
    results = make_results()
    assert results.route_changes_per_minute() == [3.0, 0.0]


def test_availability_ratios():
    assert make_results().availability_ratios() == [0.9, 0.0]


def test_overheads():
    assert make_results().overheads() == [2.0, 5.0]


def test_ecdfs():
    results = make_results()
    assert results.route_change_ecdf().median() in (0.0, 3.0)
    assert 0.0 <= results.availability_ecdf().median() <= 1.0
    assert results.overhead_ecdf().evaluate(5.0) == 1.0


def test_summary_renders():
    text = make_results().summary()
    assert "test" in text
    assert "availability" in text
    assert "control transmissions" in text
