"""AODV packet types."""

import pytest

from repro.manet import DataPacket, Rerr, Rrep, Rreq


class TestRreq:
    def test_key(self):
        rreq = Rreq(origin=1, origin_seq=5, rreq_id=9, dest=2, dest_seq=0,
                    hop_count=0, ttl=10)
        assert rreq.key() == (1, 9)

    def test_forwarded_increments_and_decrements(self):
        rreq = Rreq(origin=1, origin_seq=5, rreq_id=9, dest=2, dest_seq=3,
                    hop_count=4, ttl=10, pair_id=7)
        forwarded = rreq.forwarded()
        assert forwarded.hop_count == 5
        assert forwarded.ttl == 9
        assert forwarded.key() == rreq.key()
        assert forwarded.pair_id == 7
        # The original is immutable and unchanged.
        assert rreq.hop_count == 4


class TestRrep:
    def test_forwarded(self):
        rrep = Rrep(dest=2, dest_seq=6, origin=1, hop_count=0, pair_id=3)
        forwarded = rrep.forwarded()
        assert forwarded.hop_count == 1
        assert forwarded.dest == 2
        assert forwarded.origin == 1
        assert forwarded.pair_id == 3


class TestRerr:
    def test_defaults(self):
        rerr = Rerr()
        assert rerr.unreachable == {}
        assert rerr.pair_id is None


class TestDataPacket:
    def test_mutable_hop_count(self):
        packet = DataPacket(flow_id=0, src=1, dst=2, seq=3, created_tick=4)
        packet.hop_count += 1
        assert packet.hop_count == 1
