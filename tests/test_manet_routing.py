"""AODV routing table semantics."""

import pytest

from repro.manet import RoutingTable


@pytest.fixture
def table():
    return RoutingTable(owner=0, active_route_timeout=100.0)


def test_empty_lookup(table):
    assert table.get(5) is None
    assert table.usable(5, now=0.0) is None


def test_install_and_use(table):
    assert table.update(5, next_hop=1, hop_count=2, dest_seq=3, now=0.0)
    entry = table.usable(5, now=0.0)
    assert entry is not None
    assert entry.next_hop == 1
    assert entry.hop_count == 2


def test_expiry(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert table.usable(5, now=99.0) is not None
    assert table.usable(5, now=101.0) is None


def test_refresh_extends_lifetime(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.refresh(5, now=90.0)
    assert table.usable(5, now=150.0) is not None


def test_fresher_sequence_wins(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert table.update(5, 9, 5, 4, now=0.0)  # higher seq, longer path: wins
    assert table.get(5).next_hop == 9


def test_stale_sequence_rejected(table):
    table.update(5, 1, 2, 10, now=0.0)
    assert not table.update(5, 9, 1, 4, now=0.0)
    assert table.get(5).next_hop == 1


def test_equal_seq_shorter_path_wins(table):
    table.update(5, 1, 4, 3, now=0.0)
    assert table.update(5, 2, 2, 3, now=0.0)
    assert table.get(5).hop_count == 2


def test_equal_seq_longer_path_rejected(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert not table.update(5, 2, 4, 3, now=0.0)


def test_unusable_entry_replaceable_by_equal_or_fresher_seq(table):
    table.update(5, 1, 2, 10, now=0.0)
    table.invalidate(5)  # bumps dest_seq to 11
    assert table.update(5, 2, 3, 11, now=1.0)  # matches the bumped seq
    assert table.usable(5, now=1.0) is not None
    assert table.get(5).next_hop == 2


def test_invalidated_entry_rejects_stale_sequence(table):
    """RFC 3561 §6.2: an invalidation-bumped seq fences off older adverts.

    Before the fix, any advert overrode an unusable entry and ``max()``
    re-labelled the stale next hop with the newer sequence number —
    resurrecting pre-breakage state under a fresh seq (a loop enabler).
    """
    table.update(5, 1, 2, 10, now=0.0)
    table.invalidate(5)  # dest_seq -> 11
    assert not table.update(5, 2, 3, 4, now=1.0)  # stale advert: rejected
    assert table.usable(5, now=1.0) is None
    entry = table.get(5)
    assert entry.next_hop == 1  # untouched
    assert entry.dest_seq == 11  # bump preserved, not re-labelled


def test_invalidate_then_stale_rrep_not_resurrected(table):
    """The invalidate-then-stale-RREP sequence that motivated the fix."""
    table.update(7, 3, 2, 8, now=0.0)
    table.invalidate(7)  # link broke; seq bumped to 9
    # A delayed RREP carrying the pre-breakage seq arrives via the old
    # next hop: it must not re-validate the broken route.
    assert not table.update(7, 3, 2, 8, now=2.0)
    assert table.usable(7, now=2.0) is None
    # A genuinely fresh RREP does win, and is recorded under its own seq.
    assert table.update(7, 4, 3, 9, now=3.0)
    entry = table.usable(7, now=3.0)
    assert entry is not None
    assert entry.next_hop == 4
    assert entry.dest_seq == 9


def test_expired_entry_replaceable_at_same_seq(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert table.usable(5, now=200.0) is None  # expired, still valid
    assert table.update(5, 2, 4, 3, now=200.0)  # same seq revives it
    assert table.usable(5, now=200.0).next_hop == 2


def test_update_never_advertises_unlearned_seq(table):
    """The stored seq is the advert's own, not max(old, new)."""
    table.update(5, 1, 2, 10, now=0.0)
    table.invalidate(5)  # 11
    table.update(5, 2, 1, 11, now=1.0)
    assert table.get(5).dest_seq == 11
    table.update(5, 3, 1, 15, now=2.0)
    assert table.get(5).dest_seq == 15


def test_invalidate_bumps_sequence(table):
    table.update(5, 1, 2, 3, now=0.0)
    entry = table.invalidate(5)
    assert entry is not None
    assert not entry.valid
    assert entry.dest_seq == 4


def test_invalidate_missing_is_noop(table):
    assert table.invalidate(5) is None


def test_invalidate_via(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.update(6, 1, 3, 3, now=0.0)
    table.update(7, 2, 1, 3, now=0.0)
    broken = table.invalidate_via(1)
    assert set(broken) == {5, 6}
    assert table.usable(7, now=0.0) is not None


def test_precursors(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.add_precursor(5, 8)
    table.add_precursor(5, 9)
    assert table.get(5).precursors == {8, 9}
    table.add_precursor(42, 1)  # unknown dest: silently ignored


def test_iteration_and_len(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.update(6, 1, 2, 3, now=0.0)
    assert len(table) == 2
    assert {e.dest for e in table} == {5, 6}


def test_rejects_bad_timeout():
    with pytest.raises(ValueError):
        RoutingTable(owner=0, active_route_timeout=0.0)
