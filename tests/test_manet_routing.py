"""AODV routing table semantics."""

import pytest

from repro.manet import RoutingTable


@pytest.fixture
def table():
    return RoutingTable(owner=0, active_route_timeout=100.0)


def test_empty_lookup(table):
    assert table.get(5) is None
    assert table.usable(5, now=0.0) is None


def test_install_and_use(table):
    assert table.update(5, next_hop=1, hop_count=2, dest_seq=3, now=0.0)
    entry = table.usable(5, now=0.0)
    assert entry is not None
    assert entry.next_hop == 1
    assert entry.hop_count == 2


def test_expiry(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert table.usable(5, now=99.0) is not None
    assert table.usable(5, now=101.0) is None


def test_refresh_extends_lifetime(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.refresh(5, now=90.0)
    assert table.usable(5, now=150.0) is not None


def test_fresher_sequence_wins(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert table.update(5, 9, 5, 4, now=0.0)  # higher seq, longer path: wins
    assert table.get(5).next_hop == 9


def test_stale_sequence_rejected(table):
    table.update(5, 1, 2, 10, now=0.0)
    assert not table.update(5, 9, 1, 4, now=0.0)
    assert table.get(5).next_hop == 1


def test_equal_seq_shorter_path_wins(table):
    table.update(5, 1, 4, 3, now=0.0)
    assert table.update(5, 2, 2, 3, now=0.0)
    assert table.get(5).hop_count == 2


def test_equal_seq_longer_path_rejected(table):
    table.update(5, 1, 2, 3, now=0.0)
    assert not table.update(5, 2, 4, 3, now=0.0)


def test_unusable_entry_always_replaceable(table):
    table.update(5, 1, 2, 10, now=0.0)
    table.invalidate(5)
    assert table.update(5, 2, 3, 4, now=1.0)  # lower seq but old route invalid
    assert table.usable(5, now=1.0) is not None


def test_invalidate_bumps_sequence(table):
    table.update(5, 1, 2, 3, now=0.0)
    entry = table.invalidate(5)
    assert entry is not None
    assert not entry.valid
    assert entry.dest_seq == 4


def test_invalidate_missing_is_noop(table):
    assert table.invalidate(5) is None


def test_invalidate_via(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.update(6, 1, 3, 3, now=0.0)
    table.update(7, 2, 1, 3, now=0.0)
    broken = table.invalidate_via(1)
    assert set(broken) == {5, 6}
    assert table.usable(7, now=0.0) is not None


def test_precursors(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.add_precursor(5, 8)
    table.add_precursor(5, 9)
    assert table.get(5).precursors == {8, 9}
    table.add_precursor(42, 1)  # unknown dest: silently ignored


def test_iteration_and_len(table):
    table.update(5, 1, 2, 3, now=0.0)
    table.update(6, 1, 2, 3, now=0.0)
    assert len(table) == 2
    assert {e.dest for e in table} == {5, 6}


def test_rejects_bad_timeout():
    with pytest.raises(ValueError):
        RoutingTable(owner=0, active_route_timeout=0.0)
