"""High-level MANET runner."""

from dataclasses import replace

import pytest

from repro.levy import LevyWalkModel
from repro.manet import ManetConfig, bench_config, paper_config, run_model, run_three_models
from repro.stats import ParetoFit


@pytest.fixture(scope="module")
def model():
    return LevyWalkModel(
        name="toy",
        flight=ParetoFit(xm=300.0, alpha=1.3, n=50),
        pause=ParetoFit(xm=120.0, alpha=0.9, n=50),
        k=2.0,
        rho=0.4,
        n_flights=50,
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ManetConfig(
        n_nodes=12,
        arena_m=3000.0,
        radio_range_m=1200.0,
        n_pairs=4,
        duration_s=240.0,
        seed=9,
    )


def test_run_model_produces_metrics(model, tiny_config):
    results = run_model(model, tiny_config)
    assert results.name == "toy"
    assert len(results.flows) == 4
    assert results.duration_s == 240.0


def test_run_model_deterministic(model, tiny_config):
    a = run_model(model, tiny_config)
    b = run_model(model, tiny_config)
    assert a.total_control == b.total_control
    assert [f.data_delivered for f in a.flows] == [f.data_delivered for f in b.flows]


def test_run_model_seed_changes_outcome(model, tiny_config):
    a = run_model(model, tiny_config)
    b = run_model(model, tiny_config, seed=123)
    assert a.total_control != b.total_control or [
        f.data_delivered for f in a.flows
    ] != [f.data_delivered for f in b.flows]


def test_run_three_models_shares_pairs(model, tiny_config):
    slow = LevyWalkModel(
        name="slow",
        flight=model.flight,
        pause=ParetoFit(xm=3600.0, alpha=2.0, n=50),
        k=500.0,
        rho=0.2,
        n_flights=50,
    )
    results = run_three_models([model, slow], tiny_config)
    assert [r.name for r in results] == ["toy", "slow"]
    pairs_a = {(f.src, f.dst) for f in results[0].flows}
    pairs_b = {(f.src, f.dst) for f in results[1].flows}
    assert pairs_a == pairs_b


def test_presets():
    paper = paper_config()
    assert paper.n_nodes == 200
    assert paper.arena_m == 100_000.0
    assert paper.radio_range_m == 1000.0
    assert paper.n_pairs == 100
    bench = bench_config()
    assert bench.n_nodes < paper.n_nodes
    assert bench.arena_m < paper.arena_m
    # The bench arena must actually support multi-hop routing.
    import math

    degree = bench.n_nodes * math.pi * bench.radio_range_m**2 / bench.arena_m**2
    assert degree > 4.0
