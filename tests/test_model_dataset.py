"""Dataset containers."""

import pytest

from repro.model import Dataset, UserData, rename, study_duration_days
from helpers import (
    make_checkin,
    make_dataset,
    make_poi,
    make_user,
    make_visit,
    stationary_gps,
)


@pytest.fixture
def tiny_dataset():
    poi = make_poi("p0")
    users = [
        make_user(
            "u0",
            gps=stationary_gps(0, 0, 0, 600),
            checkins=[make_checkin("c0", "u0", t=100)],
            visits=[make_visit("v0", "u0")],
            study_days=5.0,
        ),
        make_user(
            "u1",
            gps=stationary_gps(10, 10, 0, 1200),
            checkins=[make_checkin("c1", "u1", t=50), make_checkin("c2", "u1", t=500)],
            visits=[make_visit("v1", "u1"), make_visit("v2", "u1", t_start=700, t_end=1400)],
            study_days=15.0,
        ),
    ]
    return make_dataset(users, pois=[poi])


def test_len_and_iter(tiny_dataset):
    assert len(tiny_dataset) == 2
    assert {d.user_id for d in tiny_dataset} == {"u0", "u1"}


def test_poi_lookup(tiny_dataset):
    assert tiny_dataset.poi("p0").poi_id == "p0"
    with pytest.raises(KeyError):
        tiny_dataset.poi("missing")


def test_all_checkins(tiny_dataset):
    assert len(tiny_dataset.all_checkins) == 3


def test_all_visits(tiny_dataset):
    assert len(tiny_dataset.all_visits) == 3


def test_all_gps_points(tiny_dataset):
    assert len(tiny_dataset.all_gps_points) == 11 + 21


def test_has_visits(tiny_dataset):
    assert tiny_dataset.has_visits()


def test_require_visits_raises_when_missing():
    user = make_user("u0")
    with pytest.raises(ValueError, match="visits not extracted"):
        user.require_visits()


def test_stats(tiny_dataset):
    stats = tiny_dataset.stats()
    assert stats.n_users == 2
    assert stats.avg_days_per_user == 10.0
    assert stats.n_checkins == 3
    assert stats.n_visits == 3
    assert stats.n_gps_points == 32


def test_stats_row_renders(tiny_dataset):
    assert "test" in tiny_dataset.stats().as_row()


def test_subset(tiny_dataset):
    sub = tiny_dataset.subset(["u1"], name="one")
    assert len(sub) == 1
    assert sub.name == "one"
    assert "u1" in sub.users


def test_subset_unknown_user(tiny_dataset):
    with pytest.raises(KeyError):
        tiny_dataset.subset(["nope"])


def test_with_checkins_filtered(tiny_dataset):
    filtered = tiny_dataset.with_checkins_filtered(lambda c: c.t < 200)
    assert len(filtered.all_checkins) == 2
    # GPS and visits are untouched.
    assert len(filtered.all_visits) == 3
    # The original is untouched.
    assert len(tiny_dataset.all_checkins) == 3


def test_user_key_mismatch_rejected():
    user = make_user("u0")
    with pytest.raises(ValueError, match="does not match"):
        Dataset(name="bad", pois={}, users={"other": user})


def test_user_data_sorted():
    user = make_user(
        "u0",
        gps=list(reversed(stationary_gps(0, 0, 0, 300))),
        checkins=[make_checkin("c1", "u0", t=500), make_checkin("c0", "u0", t=100)],
    )
    ordered = user.sorted()
    assert [p.t for p in ordered.gps] == sorted(p.t for p in user.gps)
    assert [c.t for c in ordered.checkins] == [100, 500]


def test_study_duration_days():
    user = make_user("u0", gps=stationary_gps(0, 0, 0, 86400))
    assert study_duration_days(user) == pytest.approx(1.0)
    assert study_duration_days(make_user("u1")) == 0.0


def test_rename(tiny_dataset):
    renamed = rename(tiny_dataset, "fresh")
    assert renamed.name == "fresh"
    assert renamed.users is tiny_dataset.users
