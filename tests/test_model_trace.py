"""Columnar GpsTrace: construction, sequence behaviour, pickling."""

import pickle

import numpy as np
import pytest

from repro.model import GpsPoint, GpsTrace, as_trace


def make_trace():
    return GpsTrace([0.0, 60.0, 120.0], [1.0, 2.0, 3.0], [10.0, 20.0, 30.0])


def test_columns_are_contiguous_float64():
    trace = GpsTrace([0, 1], [2, 3], [4, 5])
    for col in (trace.t, trace.x, trace.y):
        assert col.dtype == np.float64
        assert col.flags["C_CONTIGUOUS"]


def test_mismatched_columns_rejected():
    with pytest.raises(ValueError):
        GpsTrace([0.0, 1.0], [0.0], [0.0, 1.0])
    with pytest.raises(ValueError):
        GpsTrace([[0.0]], [[0.0]], [[0.0]])


def test_sequence_protocol():
    trace = make_trace()
    assert len(trace) == 3
    assert trace[1] == GpsPoint(t=60.0, x=2.0, y=20.0)
    assert [p.t for p in trace] == [0.0, 60.0, 120.0]
    assert trace.to_points() == [
        GpsPoint(0.0, 1.0, 10.0),
        GpsPoint(60.0, 2.0, 20.0),
        GpsPoint(120.0, 3.0, 30.0),
    ]


def test_slicing_returns_trace():
    trace = make_trace()
    tail = trace[1:]
    assert isinstance(tail, GpsTrace)
    assert len(tail) == 2
    assert tail[0].t == 60.0


def test_empty_trace_is_falsy_and_equal_to_empty_list():
    empty = GpsTrace.empty()
    assert len(empty) == 0
    assert not empty
    assert empty == []


def test_equality_with_point_list_and_trace():
    trace = make_trace()
    assert trace == make_trace()
    assert trace == trace.to_points()
    assert trace != make_trace()[:2]
    assert trace != [GpsPoint(0.0, 1.0, 10.0)]
    assert not (trace == "not a trace")


def test_from_points_round_trip_is_exact():
    pts = [GpsPoint(t=0.1, x=-1.25, y=3.75), GpsPoint(t=7.3, x=0.0, y=-2.5)]
    assert GpsTrace.from_points(pts).to_points() == pts


def test_coerce_is_noop_for_traces():
    trace = make_trace()
    assert as_trace(trace) is trace
    assert GpsTrace.from_points(trace) is trace
    coerced = as_trace(trace.to_points())
    assert isinstance(coerced, GpsTrace)
    assert coerced == trace


def test_pickle_round_trip():
    trace = make_trace()
    restored = pickle.loads(pickle.dumps(trace))
    assert isinstance(restored, GpsTrace)
    assert restored == trace


def test_sorted_is_stable_and_lazy():
    trace = make_trace()
    assert trace.is_sorted()
    assert trace.sorted() is trace  # already-sorted fast path
    shuffled = GpsTrace([60.0, 0.0, 60.0], [1.0, 2.0, 3.0], [0.0, 0.0, 0.0])
    ordered = shuffled.sorted()
    assert ordered.t.tolist() == [0.0, 60.0, 60.0]
    # Stable: the two t=60 samples keep their input order (x=1 before x=3),
    # matching sorted(points, key=lambda p: p.t) exactly.
    assert ordered.x.tolist() == [2.0, 1.0, 3.0]


def test_sorted_matches_python_sorted():
    rng = np.random.default_rng(7)
    t = rng.choice([0.0, 60.0, 120.0], size=50)
    trace = GpsTrace(t, rng.normal(size=50), rng.normal(size=50))
    assert trace.sorted().to_points() == sorted(
        trace.to_points(), key=lambda p: p.t
    )


def test_rows_yields_python_floats():
    for row in make_trace().rows():
        assert all(type(v) is float for v in row)


def test_time_bounds():
    assert make_trace().time_bounds() == (0.0, 120.0)
    with pytest.raises(ValueError):
        GpsTrace.empty().time_bounds()


def test_nbytes_counts_all_columns():
    assert make_trace().nbytes() == 3 * 3 * 8
