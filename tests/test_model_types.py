"""Model record types."""

import pytest

from repro.model import EXTRANEOUS_TYPES, CheckinType, PoiCategory, UserProfile, Visit
from helpers import make_checkin, make_poi, make_profile, make_visit


class TestPoiCategory:
    def test_nine_categories(self):
        assert len(list(PoiCategory)) == 9

    def test_from_label(self):
        assert PoiCategory.from_label("Food") is PoiCategory.FOOD

    def test_from_label_unknown(self):
        with pytest.raises(ValueError):
            PoiCategory.from_label("Bowling")


class TestCheckinType:
    def test_honest_not_extraneous(self):
        assert not CheckinType.HONEST.is_extraneous

    def test_all_others_extraneous(self):
        for kind in CheckinType:
            if kind is not CheckinType.HONEST:
                assert kind.is_extraneous

    def test_extraneous_tuple_excludes_honest(self):
        assert CheckinType.HONEST not in EXTRANEOUS_TYPES
        assert len(EXTRANEOUS_TYPES) == 4


class TestVisit:
    def test_duration(self):
        assert make_visit(t_start=100, t_end=700).duration == 600

    def test_rejects_reversed_times(self):
        with pytest.raises(ValueError):
            make_visit(t_start=700, t_end=100)

    def test_time_distance_inside_is_zero(self):
        visit = make_visit(t_start=100, t_end=700)
        assert visit.time_distance(100) == 0.0
        assert visit.time_distance(400) == 0.0
        assert visit.time_distance(700) == 0.0

    def test_time_distance_before(self):
        assert make_visit(t_start=100, t_end=700).time_distance(40) == 60.0

    def test_time_distance_after(self):
        assert make_visit(t_start=100, t_end=700).time_distance(1000) == 300.0

    def test_time_distance_uses_nearer_endpoint(self):
        visit = make_visit(t_start=100, t_end=700)
        # 90 is 10 from start and 610 from end.
        assert visit.time_distance(90) == 10.0


class TestUserProfile:
    def test_checkins_per_day(self):
        profile = make_profile(study_days=10.0)
        assert profile.checkins_per_day(25) == 2.5

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            UserProfile(user_id="u", friends=-1, badges=0, mayorships=0, study_days=1)

    def test_rejects_zero_study_days(self):
        with pytest.raises(ValueError):
            UserProfile(user_id="u", friends=0, badges=0, mayorships=0, study_days=0)


class TestCheckin:
    def test_intent_not_in_equality(self):
        a = make_checkin(intent=CheckinType.HONEST)
        b = make_checkin(intent=CheckinType.REMOTE)
        assert a == b

    def test_defaults(self):
        checkin = make_checkin()
        assert checkin.intent is None
        assert checkin.category is PoiCategory.FOOD


def test_poi_fields():
    poi = make_poi("p1", 10.0, 20.0, PoiCategory.SHOP)
    assert poi.poi_id == "p1"
    assert (poi.x, poi.y) == (10.0, 20.0)
    assert poi.category is PoiCategory.SHOP
