"""Instrumentation is a no-op: obs on/off and any worker count agree.

The observability layer's hard contract: it observes, it never steers.
``validate()`` must produce byte-identical reports with obs enabled or
disabled, serial or process-pool, and the metric *totals* (counters,
data-derived histograms) must be identical for workers ∈ {1, 2, 4}
because counter merges commute and histograms pool before summarising.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import validate
from repro.io import load_dataset
from repro.obs import ObsContext, read_trace, write_trace

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"

#: Counters whose totals must not depend on obs mode or worker count.
DATA_COUNTERS = [
    "extract.visits_total",
    "matching.honest_total",
    "matching.extraneous_total",
    "matching.missing_total",
    "matching.rounds_total",
    "classify.remote_total",
    "classify.driveby_total",
    "classify.superfluous_total",
    "classify.other_total",
]


def golden():
    return load_dataset(GOLDEN_DIR)


def fingerprint(report):
    """Everything observable about a report, as bytes-comparable data."""
    return {
        "user_order": list(report.matching.per_user),
        "pairs": {
            user_id: [(c.checkin_id, v.visit_id) for c, v in m.matches]
            for user_id, m in report.matching.per_user.items()
        },
        "labels": {
            cid: label.value for cid, label in report.classification.labels.items()
        },
        "summary": report.summary(),
    }


class TestObsIsANoOp:
    @pytest.fixture(scope="class")
    def baseline(self):
        """Obs disabled, serial: the reference output."""
        return fingerprint(validate(golden()))

    def test_obs_on_is_byte_identical_serial(self, baseline):
        report = validate(golden(), obs=ObsContext())
        assert fingerprint(report) == baseline

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_obs_on_is_byte_identical_parallel(self, baseline, workers):
        report = validate(golden(), workers=workers, obs=ObsContext())
        assert fingerprint(report) == baseline

    @pytest.mark.parametrize("workers", [2, 4])
    def test_obs_off_parallel_matches(self, baseline, workers):
        report = validate(golden(), workers=workers)
        assert fingerprint(report) == baseline


class TestMetricDeterminism:
    def run_with_obs(self, workers):
        ctx = ObsContext()
        validate(golden(), workers=workers, obs=ctx)
        return ctx

    @pytest.fixture(scope="class")
    def contexts(self):
        return {workers: self.run_with_obs(workers) for workers in (1, 2, 4)}

    def test_counters_identical_across_worker_counts(self, contexts):
        snapshots = {
            workers: ctx.metrics.snapshot()["counters"]
            for workers, ctx in contexts.items()
        }
        for name in DATA_COUNTERS:
            values = {workers: snap.get(name) for workers, snap in snapshots.items()}
            assert len(set(values.values())) == 1, f"{name} diverged: {values}"

    def test_data_histograms_identical_across_worker_counts(self, contexts):
        summaries = {
            workers: ctx.metrics.snapshot()["histograms"]["matching.rounds_per_user"]
            for workers, ctx in contexts.items()
        }
        assert summaries[1] == summaries[2] == summaries[4]

    def test_counters_match_report(self, contexts):
        report = validate(golden())
        counters = contexts[2].metrics.snapshot()["counters"]
        assert counters["matching.honest_total"] == report.n_honest
        assert counters["matching.extraneous_total"] == report.n_extraneous
        assert counters["matching.missing_total"] == report.n_missing

    def test_span_stream_structure(self, contexts):
        ctx = contexts[2]
        # Root span exists exactly once; every stage span is its child.
        roots = ctx.spans_named("pipeline.validate")
        assert len(roots) == 1
        stage_names = {"stage.extract", "stage.match", "stage.classify"}
        stages = [s for s in ctx.spans if s.name in stage_names]
        assert {s.name for s in stages} == stage_names
        assert all(s.parent_id == roots[0].span_id for s in stages)
        # Every shard.run span hangs off a stage span.
        stage_ids = {s.span_id for s in stages}
        shard_spans = ctx.spans_named("shard.run")
        assert shard_spans and all(s.parent_id in stage_ids for s in shard_spans)

    def test_trace_export_parses(self, contexts, tmp_path):
        path = write_trace(tmp_path / "golden.jsonl", contexts[4])
        records = read_trace(path)
        assert any(r["type"] == "span" and r["name"] == "pipeline.validate"
                   for r in records)
        counters = {r["name"]: r["value"] for r in records
                    if r["type"] == "metric" and r["kind"] == "counter"}
        expected = json.loads((GOLDEN_DIR / "expected.json").read_text())
        assert counters["matching.honest_total"] == expected["venn"]["honest"]
