"""Run-diff auditing: severity classification, gates, trace diffs."""

from __future__ import annotations

import copy

import pytest

from repro.obs import RunManifest, diff_manifests, diff_traces


def make_manifest(**overrides):
    base = dict(
        command="validate",
        package_version="1.0.0",
        python_version="3.11.0",
        config_hash="c" * 64,
        dataset={"name": "Golden", "n_users": 3, "sha256": "d" * 64},
        seeds={"primary": 20131121},
        workers=2,
        timings={"wall_s": 1.0, "stages": [
            {"stage": "extract", "wall_s": 0.6, "executor": "serial", "shards": []},
            {"stage": "match", "wall_s": 0.4, "executor": "serial", "shards": []},
        ]},
        metrics={
            "counters": {"matching.honest_total": 6, "runtime.shards_total": 4},
            "gauges": {"matching.extraneous_fraction": 0.8},
            "histograms": {"runtime.shard_wall_s": {"count": 4, "p50": 0.1}},
        },
        extra={"extract.kernel": "numpy", "data": "/tmp/a"},
        scorecard={"status": "pass", "counts": {}, "checks": [
            {"name": "matching.extraneous_fraction", "status": "pass"},
        ]},
    )
    base.update(overrides)
    return RunManifest(**base)


def variant(manifest, mutate):
    clone = copy.deepcopy(manifest)
    mutate(clone)
    return clone


class TestManifestDiff:
    def test_identical_runs_diff_clean(self):
        a = make_manifest()
        diff = diff_manifests(a, copy.deepcopy(a))
        assert not diff.has_regressions
        assert diff.entries == []
        assert "equivalent" in diff.format_report()

    def test_worker_count_and_versions_are_info(self):
        a = make_manifest()
        b = variant(a, lambda m: (
            setattr(m, "workers", 8),
            setattr(m, "python_version", "3.12.0"),
        ))
        diff = diff_manifests(a, b)
        assert not diff.has_regressions
        assert {e.key for e in diff.entries} == {"workers", "python_version"}

    def test_config_hash_change_is_regression(self):
        a = make_manifest()
        b = variant(a, lambda m: setattr(m, "config_hash", "e" * 64))
        diff = diff_manifests(a, b)
        assert diff.has_regressions
        assert diff.regressions()[0].key == "config_hash"

    def test_dataset_and_seed_changes_are_regressions(self):
        a = make_manifest()
        b = variant(a, lambda m: (
            m.dataset.update(sha256="f" * 64),
            m.seeds.update(primary=7),
        ))
        diff = diff_manifests(a, b)
        assert {e.section for e in diff.regressions()} == {"dataset", "seeds"}

    def test_semantic_counter_drift_is_regression(self):
        a = make_manifest()
        b = variant(a, lambda m: m.metrics["counters"].update(
            {"matching.honest_total": 7}))
        diff = diff_manifests(a, b)
        assert diff.has_regressions
        assert diff.regressions()[0].note == "semantic metric drift"

    def test_runtime_metrics_are_info(self):
        a = make_manifest()
        b = variant(a, lambda m: (
            m.metrics["counters"].update({"runtime.shards_total": 9}),
            m.metrics["histograms"].update(
                {"runtime.shard_wall_s": {"count": 9, "p50": 0.2}}),
        ))
        diff = diff_manifests(a, b)
        assert not diff.has_regressions
        # Histogram noise is suppressed entirely; the counter is info.
        assert [e.key for e in diff.entries] == ["runtime.shards_total"]

    def test_semantic_histogram_drift_is_regression(self):
        a = make_manifest()
        a.metrics["histograms"]["match.candidates"] = {"count": 5, "p50": 2.0}
        b = variant(a, lambda m: m.metrics["histograms"].update(
            {"match.candidates": {"count": 5, "p50": 3.0}}))
        assert diff_manifests(a, b).has_regressions

    def test_headline_extra_drift_is_regression(self):
        a = make_manifest()
        a.extra["headline"] = {"figure7.honest_gps_speed_ratio": 0.06}
        b = variant(a, lambda m: m.extra["headline"].update(
            {"figure7.honest_gps_speed_ratio": 0.5}))
        diff = diff_manifests(a, b)
        assert diff.has_regressions
        assert diff.regressions()[0].key == "headline.figure7.honest_gps_speed_ratio"

    def test_profile_and_health_extras_never_gate(self):
        a = make_manifest()
        b = variant(a, lambda m: m.extra.update(
            profile={"extract": {"shards": 3}},
            health={"degraded": True},
        ))
        assert diff_manifests(a, b).entries == []

    def test_kernel_and_data_path_extras_are_info(self):
        a = make_manifest()
        b = variant(a, lambda m: m.extra.update({
            "extract.kernel": "python", "data": "/tmp/b"}))
        diff = diff_manifests(a, b)
        assert not diff.has_regressions
        assert len(diff.entries) == 2

    def test_scorecard_worsening_flip_is_regression(self):
        a = make_manifest()
        b = variant(a, lambda m: m.scorecard["checks"][0].update(
            {"status": "fail"}))
        diff = diff_manifests(a, b)
        assert diff.has_regressions
        assert diff.regressions()[0].section == "scorecard"

    def test_scorecard_improving_flip_is_info(self):
        a = make_manifest()
        a.scorecard["checks"][0]["status"] = "warn"
        b = variant(a, lambda m: m.scorecard["checks"][0].update(
            {"status": "pass"}))
        diff = diff_manifests(a, b)
        assert not diff.has_regressions
        assert diff.entries[0].note == "fidelity check improved"

    def test_wall_time_regression_needs_both_gates(self):
        a = make_manifest()
        # +400% but only +0.24s: under the absolute floor -> info.
        small = variant(a, lambda m: m.timings["stages"][1].update(
            {"wall_s": 0.4 + 0.24}))
        diff = diff_manifests(a, small, wall_abs_floor_s=0.5)
        assert not diff.has_regressions
        assert diff.entries and diff.entries[0].section == "timings"
        # +100% and +0.6s: beyond both gates -> regression.
        big = variant(a, lambda m: m.timings["stages"][0].update(
            {"wall_s": 1.2}))
        assert diff_manifests(a, big, wall_abs_floor_s=0.5).has_regressions

    def test_wall_time_speedup_never_flags(self):
        a = make_manifest()
        b = variant(a, lambda m: m.timings["stages"][0].update({"wall_s": 0.01}))
        assert diff_manifests(a, b).entries == []

    def test_stage_structure_change_is_regression(self):
        a = make_manifest()
        b = variant(a, lambda m: m.timings["stages"].pop())
        diff = diff_manifests(a, b)
        assert diff.has_regressions
        assert diff.regressions()[0].key == "stages"

    def test_as_dict_orders_regressions_first(self):
        a = make_manifest()
        b = variant(a, lambda m: (
            setattr(m, "workers", 8),
            m.metrics["counters"].update({"matching.honest_total": 9}),
        ))
        dump = diff_manifests(a, b).as_dict()
        assert dump["regression"] is True
        assert dump["n_regressions"] == 1 and dump["n_info"] == 1
        assert dump["entries"][0]["severity"] == "regression"

    def test_format_report_lists_regressions(self):
        a = make_manifest()
        b = variant(a, lambda m: m.metrics["counters"].update(
            {"matching.honest_total": 9}))
        text = diff_manifests(a, b).format_report()
        assert "REGRESSION" in text
        assert "matching.honest_total" in text


class TestTraceDiff:
    def records(self, honest=6, shards=2):
        recs = [
            {"type": "run", "command": "validate"},
            {"type": "metric", "kind": "counter",
             "name": "matching.honest_total", "value": honest},
            {"type": "metric", "kind": "counter",
             "name": "runtime.shards_total", "value": shards},
        ]
        recs += [{"type": "span", "name": "shard.run"} for _ in range(shards)]
        return recs

    def test_identical_traces_diff_clean(self):
        assert diff_traces(self.records(), self.records()).entries == []

    def test_semantic_metric_drift_is_regression(self):
        diff = diff_traces(self.records(honest=6), self.records(honest=7))
        assert diff.has_regressions
        assert diff.regressions()[0].key == "counter:matching.honest_total"

    def test_execution_shape_differences_are_info(self):
        diff = diff_traces(self.records(shards=2), self.records(shards=5))
        assert not diff.has_regressions
        assert [e.section for e in diff.entries] == ["trace.spans"]
