"""Trace export edge cases: empty, truncated, and future-format files."""

from __future__ import annotations

import json

import pytest

from repro.obs import ObsContext, read_trace, trace_records, write_trace


class TestReadTraceEdgeCases:
    def test_empty_file_yields_no_records(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"type": "span", "name": "a"}\n\n   \n')
        assert len(read_trace(path)) == 1

    def test_truncated_line_raises_with_location(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type": "span", "name": "a"}\n{"type": "metric", "na'
        )
        with pytest.raises(ValueError) as excinfo:
            read_trace(path)
        message = str(excinfo.value)
        assert "line 2" in message
        assert str(path) in message

    def test_truncated_line_skipped_when_lenient(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type": "span", "name": "a"}\n{"type": "metric", "na'
        )
        records = read_trace(path, strict=False)
        assert records == [{"type": "span", "name": "a"}]

    def test_corrupt_middle_line_strict_vs_lenient(self, tmp_path):
        path = tmp_path / "mid.jsonl"
        path.write_text(
            '{"type": "span", "name": "a"}\n'
            "not json at all\n"
            '{"type": "span", "name": "b"}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)
        names = [r["name"] for r in read_trace(path, strict=False)]
        assert names == ["a", "b"]

    def test_unknown_record_types_pass_through(self, tmp_path):
        path = tmp_path / "future.jsonl"
        future = {"type": "flamegraph", "payload": [1, 2, 3]}
        path.write_text(
            json.dumps({"type": "span", "name": "a"}) + "\n"
            + json.dumps(future) + "\n"
        )
        records = read_trace(path)
        assert future in records


class TestRoundTrip:
    def context(self, profile=False):
        ctx = ObsContext(profile=profile)
        with ctx.span("stage.demo"):
            ctx.count("demo.total", 3)
        if profile:
            ctx.record_profile({"stage": "demo", "wall_s": 0.1,
                                "tracemalloc_peak_kb": 2.0, "top": []})
        return ctx

    def test_round_trip_preserves_records(self, tmp_path):
        ctx = self.context()
        path = write_trace(tmp_path / "t.jsonl", ctx)
        assert read_trace(path) == trace_records(ctx)

    def test_profile_records_serialise_between_events_and_metrics(
            self, tmp_path):
        ctx = self.context(profile=True)
        types = [r["type"] for r in
                 read_trace(write_trace(tmp_path / "p.jsonl", ctx))]
        assert "profile" in types
        assert types.index("profile") < types.index("metric")

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = write_trace(tmp_path / "s.jsonl", self.context())
        for line in path.read_text().splitlines():
            assert line == json.dumps(json.loads(line), sort_keys=True)
