"""Fidelity scorecards: check kinds, tolerances, registry, determinism."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import validate
from repro.io import load_dataset
from repro.obs import (
    DEFAULT_REGISTRY,
    ReferenceCheck,
    RunManifest,
    Scorecard,
    build_manifest,
    evaluate,
    manifest_statistics,
    report_statistics,
    scorecard_for_manifest,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"


def check(**overrides):
    base = dict(name="m.x", source="Table 9", reference=1.0,
                warn_tolerance=0.1, fail_tolerance=0.25)
    base.update(overrides)
    return ReferenceCheck(**base)


class TestReferenceCheck:
    def test_band_deviation_symmetric(self):
        c = check(kind="band", reference=2.0)
        assert c.deviation(2.2) == pytest.approx(0.1)
        assert c.deviation(1.8) == pytest.approx(0.1)

    def test_min_only_penalises_shortfall(self):
        c = check(kind="min", reference=1.0)
        assert c.deviation(2.0) == 0.0
        assert c.deviation(0.8) == pytest.approx(0.2)

    def test_max_only_penalises_excess(self):
        c = check(kind="max", reference=1.0)
        assert c.deviation(0.1) == 0.0
        assert c.deviation(1.3) == pytest.approx(0.3)

    def test_status_thresholds(self):
        c = check(kind="band", warn_tolerance=0.1, fail_tolerance=0.25)
        assert c.evaluate(1.05).status == "pass"
        assert c.evaluate(1.2).status == "warn"
        assert c.evaluate(2.0).status == "fail"

    def test_boundary_deviation_is_inclusive(self):
        # Dyadic values, so the boundary deviations are float-exact.
        c = check(kind="band", reference=2.0,
                  warn_tolerance=0.25, fail_tolerance=0.5)
        assert c.evaluate(2.5).status == "pass"
        assert c.evaluate(3.0).status == "warn"

    def test_absent_statistic_skips(self):
        entry = check().evaluate(None)
        assert entry.status == "skipped"
        assert entry.reproduced is None
        assert entry.deviation is None

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            check(kind="exact")

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError, match="nonzero"):
            check(reference=0.0)

    def test_rejects_inverted_tolerances(self):
        with pytest.raises(ValueError, match="warn_tolerance"):
            check(warn_tolerance=0.5, fail_tolerance=0.1)


class TestScorecard:
    def test_status_is_worst_scored(self):
        card = evaluate(
            {"a": 1.0, "b": 1.2},
            registry=[check(name="a"), check(name="b"), check(name="c")],
        )
        assert card.entry("a").status == "pass"
        assert card.entry("b").status == "warn"
        assert card.entry("c").status == "skipped"
        assert card.status == "warn"
        assert card.counts() == {"pass": 1, "warn": 1, "fail": 0, "skipped": 1}

    def test_all_skipped_reports_skipped(self):
        card = evaluate({}, registry=[check(name="a")])
        assert card.status == "skipped"

    def test_unknown_entry_raises(self):
        card = evaluate({}, registry=[check(name="a")])
        with pytest.raises(KeyError):
            card.entry("nope")

    def test_to_json_is_canonical(self):
        card = evaluate({"a": 1.05}, registry=[check(name="a")])
        text = card.to_json()
        assert text == json.dumps(json.loads(text), indent=2,
                                  sort_keys=True) + "\n"

    def test_as_dict_sorted_by_name(self):
        card = evaluate({}, registry=[check(name="z"), check(name="a")])
        names = [c["name"] for c in card.as_dict()["checks"]]
        assert names == ["a", "z"]

    def test_format_report_mentions_every_check(self):
        card = evaluate({"a": 1.0}, registry=[check(name="a"), check(name="b")])
        text = card.format_report()
        assert "fidelity scorecard" in text
        assert "a" in text and "b" in text


class TestRegistry:
    def test_registry_names_unique(self):
        names = [c.name for c in DEFAULT_REGISTRY]
        assert len(names) == len(set(names))

    def test_registry_covers_paper_artifacts(self):
        names = {c.name for c in DEFAULT_REGISTRY}
        assert "matching.extraneous_fraction" in names
        assert "table1.primary.checkins_per_user_day" in names
        assert "figure8.honest_gps_availability_ratio" in names


class TestGoldenScorecard:
    @pytest.fixture()
    def report(self):
        return validate(load_dataset(GOLDEN_DIR))

    def test_report_statistics_match_expected(self, report):
        venn = json.loads((GOLDEN_DIR / "expected.json").read_text())["venn"]
        stats = report_statistics(report)
        assert stats["matching.extraneous_fraction"] == pytest.approx(
            venn["extraneous"] / (venn["honest"] + venn["extraneous"])
        )
        assert stats["matching.missing_fraction"] == pytest.approx(
            venn["missing"] / (venn["honest"] + venn["missing"])
        )

    def test_golden_report_passes_default_registry(self, report):
        card = evaluate(report_statistics(report))
        assert card.status == "pass"
        assert card.counts()["fail"] == 0
        assert card.counts()["warn"] == 0


class TestManifestStatistics:
    def manifest(self, counters=None, headline=None):
        manifest = RunManifest(
            command="validate", package_version="0", python_version="0",
            config_hash="0" * 64, dataset={},
            metrics={"counters": counters or {}},
        )
        if headline is not None:
            manifest.extra["headline"] = headline
        return manifest

    def test_fractions_from_counters(self):
        m = self.manifest(counters={
            "matching.honest_total": 6, "matching.extraneous_total": 30,
            "matching.missing_total": 54, "classify.superfluous_total": 6,
        })
        stats = manifest_statistics(m)
        assert stats["matching.extraneous_fraction"] == pytest.approx(30 / 36)
        assert stats["matching.missing_fraction"] == pytest.approx(54 / 60)
        assert stats["classify.superfluous_share"] == pytest.approx(0.2)

    def test_degenerate_counters_yield_no_stats(self):
        assert manifest_statistics(self.manifest()) == {}
        zeroed = self.manifest(counters={
            "matching.honest_total": 0, "matching.extraneous_total": 0,
        })
        assert "matching.extraneous_fraction" not in manifest_statistics(zeroed)

    def test_headline_merges_and_filters(self):
        m = self.manifest(headline={
            "table1.primary.checkins_per_user_day": 4.0,
            "note": "not a number",
            "flag": True,
        })
        stats = manifest_statistics(m)
        assert stats == {"table1.primary.checkins_per_user_day": 4.0}

    def test_headline_overrides_counter_derived(self):
        m = self.manifest(
            counters={"matching.honest_total": 1,
                      "matching.extraneous_total": 1},
            headline={"matching.extraneous_fraction": 0.75},
        )
        assert manifest_statistics(m)["matching.extraneous_fraction"] == 0.75

    def test_scorecard_for_manifest_round_trips_manifest_embed(self, tmp_path):
        m = self.manifest(counters={
            "matching.honest_total": 6, "matching.extraneous_total": 30,
            "matching.missing_total": 54,
        })
        card = scorecard_for_manifest(m)
        m.scorecard = card.as_dict()
        reloaded = RunManifest.load(m.write(tmp_path / "m.json"))
        assert reloaded.scorecard == card.as_dict()
        assert reloaded.scorecard["status"] == "pass"
