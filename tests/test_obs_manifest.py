"""Run manifests: hashing, fingerprints, round-trip, rendering."""

from __future__ import annotations

import json

import pytest

from repro.core import ClassifyConfig, MatchConfig, VisitConfig
from repro.obs import (
    SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    config_hash,
    dataset_fingerprint,
)

from helpers import make_checkin, make_dataset, make_user


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(MatchConfig()) == config_hash(MatchConfig())

    def test_sensitive_to_any_threshold(self):
        assert config_hash(MatchConfig()) != config_hash(MatchConfig(alpha_m=501.0))

    def test_sensitive_to_config_class(self):
        # Same field values, different class -> different hash.
        assert config_hash(MatchConfig()) != config_hash(ClassifyConfig())

    def test_order_matters_and_composes(self):
        a = config_hash(VisitConfig(), MatchConfig())
        b = config_hash(MatchConfig(), VisitConfig())
        assert a != b
        assert len(a) == 64  # sha256 hex


class TestDatasetFingerprint:
    def dataset(self):
        return make_dataset(
            [
                make_user("u0", checkins=[make_checkin("c0", "u0", t=0.0)]),
                make_user("u1"),
            ]
        )

    def test_stable_across_builds(self):
        assert dataset_fingerprint(self.dataset()) == dataset_fingerprint(self.dataset())

    def test_changes_when_data_changes(self):
        base = dataset_fingerprint(self.dataset())
        grown = self.dataset()
        grown.users["u1"].checkins.append(make_checkin("c9", "u1", t=9.0))
        changed = dataset_fingerprint(grown)
        assert changed["sha256"] != base["sha256"]
        assert changed["n_checkins"] == base["n_checkins"] + 1

    def test_counts_in_fingerprint(self):
        fp = dataset_fingerprint(self.dataset())
        assert fp["n_users"] == 2
        assert fp["n_checkins"] == 1
        assert fp["name"] == fp["name"]  # present


class TestRoundTrip:
    def manifest(self):
        return build_manifest(
            "validate",
            dataset=make_dataset([make_user("u0")]),
            configs=(VisitConfig(), MatchConfig(), ClassifyConfig()),
            seeds={"primary": 20131121},
            workers=2,
            timings={"wall_s": 1.25, "stages": []},
            metrics={"counters": {"matching.honest_total": 6},
                     "gauges": {}, "histograms": {}},
            extra={"scale": 0.15},
        )

    def test_write_load_round_trip(self, tmp_path):
        manifest = self.manifest()
        path = manifest.write(tmp_path / "run.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest
        assert loaded.as_dict() == manifest.as_dict()

    def test_written_json_shape(self, tmp_path):
        path = self.manifest().write(tmp_path / "m.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["command"] == "validate"
        assert data["seeds"] == {"primary": 20131121}
        assert data["metrics"]["counters"]["matching.honest_total"] == 6

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = self.manifest().write(tmp_path / "m.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        data["schema_version"] = 99
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="schema_version"):
            RunManifest.load(path)

    def test_counter_accessor(self):
        manifest = self.manifest()
        assert manifest.counter("matching.honest_total") == 6
        assert manifest.counter("nonexistent") == 0

    def test_format_report_mentions_key_fields(self):
        text = self.manifest().format_report()
        assert "validate" in text
        assert "config hash" in text
        assert "matching.honest_total" in text
        assert "primary=20131121" in text

    def test_format_report_runtime_section(self):
        manifest = build_manifest(
            "validate",
            dataset=make_dataset([make_user("u0")]),
            configs=(VisitConfig(),),
            seeds={},
            workers=2,
            timings={"wall_s": 1.0, "stages": []},
            metrics={
                "counters": {
                    "store.prefetch_overlap_total": 6,
                    "store.prefetch_stalls_total": 2,
                    "matching.honest_total": 3,
                },
                "gauges": {"store.inflight_segments": 3.0},
                "histograms": {},
            },
        )
        text = manifest.format_report()
        assert "runtime:" in text
        assert "inflight segments" in text
        assert "prefetch overlap / stalls        6 / 2 (75% overlapped)" in text
        # Scheduler figures live in the runtime section only — not
        # repeated in the raw counter dump.
        assert text.count("store.prefetch_overlap_total") == 0
        assert "matching.honest_total" in text

    def test_format_report_no_runtime_section_without_figures(self):
        text = self.manifest().format_report()
        assert "runtime:" not in text
        assert "prefetch" not in text
