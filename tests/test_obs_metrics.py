"""Metrics registry: counters, gauges, histogram percentiles, merges."""

from __future__ import annotations

import json

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter("a").value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            MetricsRegistry().counter("a").inc(-1)

    def test_instruments_are_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5


class TestHistogramPercentiles:
    def test_nearest_rank_on_known_data(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1

    def test_percentile_is_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        for p in (0, 25, 50, 75, 90, 99, 100):
            assert a.percentile(p) == b.percentile(p)

    def test_small_samples(self):
        h = Histogram("h")
        h.observe(42.0)
        assert h.percentile(50) == 42.0
        assert h.percentile(99) == 42.0

    def test_empty_and_bounds(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0
        with pytest.raises(ValueError):
            h2 = Histogram("h2")
            h2.observe(1.0)
            h2.percentile(101)

    def test_single_sort_matches_per_percentile_sort(self):
        # Regression for summary() sorting once: p0/p50/p100 from the
        # shared sorted copy must pin the min/median/max exactly.
        h = Histogram("h")
        for v in (9.0, 1.0, 5.0, 3.0, 7.0):  # deliberately unsorted
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 5.0
        assert h.percentile(100) == 9.0
        summary = h.summary()
        assert summary["min"] == h.percentile(0) == 1.0
        assert summary["p50"] == h.percentile(50) == 5.0
        assert summary["max"] == h.percentile(100) == 9.0
        # observing after a summary() must not see a stale sorted copy
        h.observe(0.5)
        assert h.percentile(0) == 0.5
        assert h.summary()["min"] == 0.5

    def test_summary_shape(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 12.0
        assert summary["min"] == 2.0 and summary["max"] == 6.0
        assert summary["p50"] == 4.0


class TestSnapshotAndMerge:
    def filled(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(8.0)
        return registry

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = self.filled()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert list(snapshot["counters"]) == ["a", "c"]
        assert snapshot["histograms"]["h"]["count"] == 2

    def test_raw_snapshot_round_trips_through_merge(self):
        registry = self.filled()
        clone = MetricsRegistry()
        clone.merge_snapshot(registry.snapshot(raw=True))
        assert clone.snapshot() == registry.snapshot()

    def test_merge_order_independent_for_counters_and_histograms(self):
        shard_a = MetricsRegistry()
        shard_a.counter("n").inc(2)
        shard_a.histogram("h").observe(1.0)
        shard_b = MetricsRegistry()
        shard_b.counter("n").inc(5)
        shard_b.histogram("h").observe(9.0)

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_snapshot(shard_a.snapshot(raw=True))
        ab.merge_snapshot(shard_b.snapshot(raw=True))
        ba.merge_snapshot(shard_b.snapshot(raw=True))
        ba.merge_snapshot(shard_a.snapshot(raw=True))
        assert ab.counter("n").value == ba.counter("n").value == 7
        assert ab.histogram("h").summary() == ba.histogram("h").summary()

    def test_merge_rejects_summarised_histograms(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="raw snapshot"):
            registry.merge_snapshot(self.filled().snapshot())

    def test_merge_into_nonempty(self):
        registry = self.filled()
        registry.merge_snapshot(self.filled().snapshot(raw=True))
        assert registry.counter("c").value == 6
        assert registry.histogram("h").count == 4
