"""Profiling hooks: record shape, aggregation, observe-never-steer."""

from __future__ import annotations

import cProfile
from pathlib import Path

import pytest

from repro.core import validate
from repro.io import load_dataset
from repro.obs import (
    NULL_OBS,
    ObsContext,
    profile_call,
    profile_summary,
    top_functions,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"


def busy(n):
    return sum(i * i for i in range(n))


class TestProfileCall:
    def test_returns_result_and_record(self):
        result, record = profile_call(busy, 1000)
        assert result == busy(1000)
        assert record["wall_s"] >= 0.0
        assert record["tracemalloc_peak_kb"] >= 0.0
        assert isinstance(record["top"], list) and record["top"]

    def test_top_rows_are_json_safe(self):
        _, record = profile_call(busy, 1000)
        for row in record["top"]:
            assert set(row) == {"func", "ncalls", "tottime_s", "cumtime_s"}
            assert isinstance(row["func"], str)

    def test_top_n_truncates(self):
        _, record = profile_call(busy, 1000, top_n=1)
        assert len(record["top"]) == 1

    def test_propagates_exceptions(self):
        def boom(_):
            raise RuntimeError("shard failed")
        with pytest.raises(RuntimeError, match="shard failed"):
            profile_call(boom, None)

    def test_nested_profiling_leaves_outer_tracemalloc_running(self):
        import tracemalloc
        tracemalloc.start()
        try:
            profile_call(busy, 1000)
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_top_functions_sorted_by_cumtime(self):
        profiler = cProfile.Profile()
        profiler.runcall(busy, 1000)
        rows = top_functions(profiler)
        cums = [row["cumtime_s"] for row in rows]
        assert cums == sorted(cums, reverse=True)


class TestAggregation:
    def record(self, stage, func="a.py:1(f)", peak=10.0, cum=1.0):
        return {"stage": stage, "wall_s": cum, "tracemalloc_peak_kb": peak,
                "top": [{"func": func, "ncalls": 2, "tottime_s": 0.5,
                         "cumtime_s": cum}]}

    def test_summary_groups_by_stage(self):
        summary = profile_summary([
            self.record("extract", peak=10.0),
            self.record("extract", peak=30.0),
            self.record("match", peak=5.0),
        ])
        assert sorted(summary) == ["extract", "match"]
        assert summary["extract"]["shards"] == 2
        # Peaks take the worst shard; calls/times sum across shards.
        assert summary["extract"]["tracemalloc_peak_kb"] == 30.0
        assert summary["extract"]["top"][0]["ncalls"] == 4
        assert summary["extract"]["top"][0]["cumtime_s"] == pytest.approx(2.0)

    def test_stageless_records_group_under_question_mark(self):
        summary = profile_summary([{"wall_s": 0.0, "tracemalloc_peak_kb": 0.0,
                                    "top": []}])
        assert sorted(summary) == ["?"]

    def test_empty_records(self):
        assert profile_summary([]) == {}


class TestContextPlumbing:
    def test_profile_disabled_by_default(self):
        assert ObsContext().profile_enabled is False
        assert NULL_OBS.profile_enabled is False

    def test_null_obs_record_profile_is_noop(self):
        NULL_OBS.record_profile({"wall_s": 0.0})

    def test_delta_ships_profiles_and_absorb_tags_attrs(self):
        worker = ObsContext(profile=True)
        worker.record_profile({"wall_s": 0.1, "tracemalloc_peak_kb": 1.0,
                               "top": []})
        parent = ObsContext(profile=True)
        parent.absorb(worker.delta(), attrs={"stage": "extract", "shard_id": 0})
        assert len(parent.profiles) == 1
        assert parent.profiles[0]["stage"] == "extract"
        assert parent.profiles[0]["shard_id"] == 0


class TestEndToEnd:
    def run(self, profile, workers=2):
        ctx = ObsContext(profile=profile)
        report = validate(load_dataset(GOLDEN_DIR), workers=workers, obs=ctx)
        return report, ctx

    def test_profile_records_cover_every_stage(self):
        _, ctx = self.run(profile=True)
        stages = {p["stage"] for p in ctx.profiles}
        assert stages == {"extract", "match", "classify"}
        summary = profile_summary(ctx.profiles)
        assert all(s["shards"] >= 1 for s in summary.values())
        assert all(p["tracemalloc_peak_kb"] > 0.0 for p in ctx.profiles)

    def test_profiling_never_steers_results(self):
        plain, _ = self.run(profile=False)
        profiled, _ = self.run(profile=True)
        assert plain.summary() == profiled.summary()

    def test_profiling_serial_run_also_records(self):
        _, ctx = self.run(profile=True, workers=None)
        assert {p["stage"] for p in ctx.profiles} == {
            "extract", "match", "classify"}

    def test_no_profiles_without_flag(self):
        _, ctx = self.run(profile=False)
        assert ctx.profiles == []
