"""Live telemetry: sampler lifecycle, status file, OpenMetrics, no-op path.

The contract under test (DESIGN §12): telemetry is strictly opt-in — a
run without it constructs no sampler, spawns no thread, writes no files
and takes a ``tel is None`` branch on the ingest hot path — and when
armed it never changes the run's results: summaries, verdict streams
and manifest metrics are byte-identical with telemetry on or off.  The
status file is atomically rewritten (a concurrent reader never sees a
torn document) and the ``/metrics`` exposition round-trips through the
text-format parser.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs import (
    LiveMetrics,
    MetricsRegistry,
    TelemetrySampler,
    format_dashboard,
    parse_openmetrics,
    process_stats,
    read_status,
    registry_collector,
    render_openmetrics,
)
from repro.obs.telemetry import metric_family, sample_rates, split_series


def _sampler_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith(TelemetrySampler.THREAD_NAME)
    ]


# -- naming convention and the text format ----------------------------------


class TestOpenMetricsFormat:
    def test_family_naming_convention(self):
        assert metric_family("serve.events_ingested_total") == (
            "repro_serve_events_ingested_total"
        )
        assert metric_family("store.inflight_segments") == (
            "repro_store_inflight_segments"
        )

    def test_split_series_labels(self):
        name, labels = split_series("serve.lane_queue_depth{lane=3}")
        assert name == "serve.lane_queue_depth"
        assert labels == {"lane": "3"}
        assert split_series("plain.name") == ("plain.name", {})

    def test_render_parse_round_trip(self):
        sample = {
            "uptime_s": 1.5,
            "seq": 7,
            "process": {"rss_kb": 1024.0, "cpu_s": 0.5, "threads": 3.0},
            "metrics": {
                "counters": {
                    "serve.events_ingested_total": 100,
                    "serve.lane_events_total{lane=0}": 60,
                    "serve.lane_events_total{lane=1}": 40,
                },
                "gauges": {"serve.watermark_s": 123.5},
                "histograms": {
                    "serve.lane_queue_depth_samples{lane=0}": {
                        "count": 4, "sum": 10.0, "min": 0.0, "max": 7.0,
                        "p50": 1.0, "p90": 6.0, "p99": 7.0,
                    },
                },
            },
        }
        text = render_openmetrics(sample)
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        ingested = families["repro_serve_events_ingested_total"]
        assert ingested["type"] == "counter"
        assert ingested["samples"][""] == 100.0
        lanes = families["repro_serve_lane_events_total"]
        assert lanes["samples"]['{lane="0"}'] == 60.0
        assert lanes["samples"]['{lane="1"}'] == 40.0
        assert families["repro_serve_watermark_s"]["type"] == "gauge"
        depth = families["repro_serve_lane_queue_depth_samples"]
        assert depth["type"] == "summary"
        assert depth["samples"]['{lane="0",quantile="0.5"}'] == 1.0
        assert families["repro_serve_lane_queue_depth_samples_count"][
            "samples"]['{lane="0"}'] == 4.0
        assert families["repro_process_resident_memory_kb"]["samples"][""] == (
            1024.0
        )

    def test_counters_end_in_total(self):
        sample = {"metrics": {"counters": {"serve.events_ingested_total": 1},
                              "gauges": {}, "histograms": {}}}
        for line in render_openmetrics(sample).splitlines():
            if line.startswith("# TYPE") and line.endswith(" counter"):
                family = line.split()[2]
                assert family.endswith(("_total", "_count", "_sum")), family

    def test_parser_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="before # TYPE"):
            parse_openmetrics("repro_orphan 1\n# EOF\n")


# -- building blocks --------------------------------------------------------


class TestLiveMetrics:
    def test_inc_and_gauge(self):
        live = LiveMetrics()
        live.inc("a_total", 2)
        live.inc("a_total")
        live.set_gauge("g", 4.0)
        snap = live.collect()
        assert snap["counters"]["a_total"] == 3
        assert snap["gauges"]["g"] == 4.0
        assert snap["histograms"] == {}


def test_process_stats_shape():
    stats = process_stats()
    assert set(stats) == {"rss_kb", "cpu_s", "threads"}
    assert stats["threads"] >= 1.0
    assert stats["cpu_s"] >= 0.0


def test_registry_collector_snapshots_counters_and_gauges():
    registry = MetricsRegistry()
    registry.counter("pipeline.runs_total").inc()
    registry.gauge("store.inflight_segments").set(2.0)
    snap = registry_collector(registry)()
    assert snap["counters"]["pipeline.runs_total"] == 1
    assert snap["gauges"]["store.inflight_segments"] == 2.0


def test_sample_rates_counter_deltas():
    previous = {"t_epoch": 100.0,
                "metrics": {"counters": {"x_total": 10, "y_total": 5}}}
    current = {"t_epoch": 102.0,
               "metrics": {"counters": {"x_total": 30, "y_total": 5}}}
    rates = sample_rates(current, previous)
    assert rates == {"x_total": 10.0}
    assert sample_rates(current, None) == {}


# -- sampler lifecycle ------------------------------------------------------


class TestSamplerLifecycle:
    def test_status_file_written_and_finished(self, tmp_path):
        live_seen = LiveMetrics()
        with TelemetrySampler(
            collectors=[live_seen.collect], interval_s=0.02,
            status_path=tmp_path, command="test",
        ) as sampler:
            live_seen.inc("work_total", 5)
            deadline = time.monotonic() + 5.0
            while sampler.latest is None and time.monotonic() < deadline:
                time.sleep(0.01)
        status = json.loads((tmp_path / "live.json").read_text())
        assert status["schema"] == 1
        assert status["command"] == "test"
        assert status["finished"] is True
        assert status["metrics"]["counters"]["work_total"] == 5
        assert status["process"]["threads"] >= 1

    def test_close_is_idempotent_and_joins_thread(self, tmp_path):
        sampler = TelemetrySampler(interval_s=0.02, status_path=tmp_path)
        sampler.start()
        assert _sampler_threads()
        sampler.close()
        sampler.close()
        assert not _sampler_threads()

    def test_crash_path_leaves_unfinished_status(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TelemetrySampler(interval_s=0.02, status_path=tmp_path):
                raise RuntimeError("boom")
        # The final sample still landed, flagged not-finished, and the
        # sampler thread is gone.
        status = read_status(tmp_path)
        assert status["finished"] is False
        assert not _sampler_threads()

    def test_ring_buffer_bounded(self):
        sampler = TelemetrySampler(interval_s=5.0, ring_size=3)
        for _ in range(10):
            sampler.sample_now()
        assert len(sampler.ring) == 3
        assert sampler.latest["seq"] == 9

    def test_broken_collector_counted_not_fatal(self, tmp_path):
        def broken():
            raise RuntimeError("racing resize")

        with TelemetrySampler(
            collectors=[broken], interval_s=0.02, status_path=tmp_path,
        ):
            pass
        status = read_status(tmp_path / "live.json")
        assert status["metrics"]["counters"][
            "telemetry.collector_errors_total"] >= 1

    def test_status_parseable_during_concurrent_rewrites(self, tmp_path):
        """A reader polling live.json mid-rewrite must never see a torn
        document — the atomic tmp+replace write is the guarantee."""
        sampler = TelemetrySampler(interval_s=5.0, status_path=tmp_path)
        sampler.sample_now()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                sampler.sample_now()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            last_seq = -1
            reads = 0
            deadline = time.monotonic() + 10.0
            # Keep reading until the writer has demonstrably rewritten the
            # file under us many times; every read must parse cleanly.
            while (last_seq < 20 or reads < 300) and time.monotonic() < deadline:
                status = read_status(tmp_path)  # raises on torn JSON
                assert status["schema"] == 1
                assert status["seq"] >= last_seq
                last_seq = status["seq"]
                reads += 1
        finally:
            stop.set()
            thread.join()
        assert last_seq >= 20


# -- HTTP endpoint ----------------------------------------------------------


class TestEndpoint:
    def test_metrics_and_live_routes(self):
        live_seen = LiveMetrics()
        live_seen.inc("serve.events_ingested_total", 42)
        with TelemetrySampler(
            collectors=[live_seen.collect], interval_s=5.0, port=0,
            command="serve",
        ) as sampler:
            base = f"http://127.0.0.1:{sampler.port}"
            text = urllib.request.urlopen(
                f"{base}/metrics", timeout=10).read().decode()
            families = parse_openmetrics(text)
            assert families["repro_serve_events_ingested_total"][
                "samples"][""] == 42.0
            assert "repro_process_resident_memory_kb" in families
            status = json.loads(urllib.request.urlopen(
                f"{base}/live", timeout=10).read().decode())
            assert status["command"] == "serve"
            scraped = read_status(base)
            assert scraped["command"] == "serve"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope", timeout=10)
        assert sampler.port is not None


# -- strict no-op when disabled ---------------------------------------------


class TestDisabledPath:
    def test_service_without_telemetry_builds_no_instruments(self, monkeypatch):
        """telemetry=False must not construct ServeTelemetry at all —
        the hot path branches on ``tel is None``."""
        import repro.serve.service as service_mod
        from repro.model import Poi, PoiCategory

        def forbidden(*args, **kwargs):
            raise AssertionError("ServeTelemetry constructed while disabled")

        monkeypatch.setattr(service_mod, "ServeTelemetry", forbidden)
        poi = Poi(poi_id="p0", name="p0", category=PoiCategory.FOOD,
                  x=0.0, y=0.0)
        service = service_mod.ValidationService([poi], workers=2)
        assert service.telemetry is None
        assert service.queue_depths() == [0, 0]
        service.finish()

    def test_no_sampler_thread_or_files_without_flags(self, tmp_path):
        before = _sampler_threads()
        assert before == []
        from repro.cli import main

        out = tmp_path / "ds"
        assert main(["generate", "--scale", "0.02", "--out", str(out)]) == 0
        assert main(["validate", "--data", str(out)]) == 0
        assert _sampler_threads() == []
        assert not list(tmp_path.glob("**/live.json"))

    def test_validate_store_ignores_absent_telemetry(self, tmp_path):
        from repro.core import validate_store
        from repro.synth import generate_study_store, primary_config

        store = generate_study_store(
            primary_config().scaled(0.02), tmp_path / "store",
            segment_users=5,
        )
        summary = validate_store(store, telemetry=None)
        assert summary.n_users == store.n_users
        assert _sampler_threads() == []


# -- results are identical with telemetry on --------------------------------


class TestParity:
    @pytest.fixture(scope="class")
    def small_dataset(self):
        from repro.synth import generate_dataset, primary_config

        return generate_dataset(primary_config().scaled(0.02))

    def test_serve_summary_and_verdicts_identical(self, small_dataset,
                                                  tmp_path):
        from repro.serve import ValidationService
        from repro.synth import replay_events

        events = list(replay_events(small_dataset))

        def run(telemetry: bool):
            got = []
            service = ValidationService(
                small_dataset.pois, name=small_dataset.name, workers=2,
                sink=got.append, telemetry=telemetry,
            )
            sampler = None
            if telemetry:
                sampler = TelemetrySampler(
                    collectors=[service.telemetry.collect],
                    interval_s=0.01, status_path=tmp_path, command="serve",
                ).start()
            for event in events:
                service.ingest(event)
            summary = service.finish()
            if sampler is not None:
                sampler.close()
            # Lane hand-off makes cross-user emission order nondeterministic
            # at workers>1; per-user order is the pinned contract.
            verdicts = sorted(
                (v.as_dict() for v in got),
                key=lambda v: (v["user_id"], v["seq"]),
            )
            return summary, verdicts

        summary_off, verdicts_off = run(False)
        summary_on, verdicts_on = run(True)
        assert summary_on.summary() == summary_off.summary()
        assert verdicts_on == verdicts_off
        status = read_status(tmp_path)
        counters = status["metrics"]["counters"]
        # Registrations are bookkeeping, not lane traffic: the ingest
        # counters cover trace events (gps + checkin) only.
        n_trace = sum(1 for e in events if e.kind != "register")
        assert counters["serve.events_ingested_total"] == n_trace
        assert counters["serve.events_processed_total"] == n_trace
        assert counters["serve.verdicts_emitted_total"] == len(verdicts_on)
        gauges = status["metrics"]["gauges"]
        assert "serve.watermark_s" in gauges
        assert "serve.watermark_wall_lag_s" in gauges
        assert gauges["serve.backlog_events"] == 0.0
        dashboard = format_dashboard(status)
        assert "events" in dashboard and "watermark" in dashboard

    def test_validate_store_output_identical_and_live_published(
        self, tmp_path,
    ):
        from repro.core import validate_store
        from repro.synth import generate_study_store, primary_config

        store = generate_study_store(
            primary_config().scaled(0.05), tmp_path / "store",
            segment_users=4,
        )
        plain = validate_store(store, workers=2, inflight_segments=2)
        sampler = TelemetrySampler(
            interval_s=0.01, status_path=tmp_path / "tel", command="validate",
        ).start()
        telemetered = validate_store(
            store, workers=2, inflight_segments=2, telemetry=sampler,
        )
        sampler.close()
        assert telemetered.summary() == plain.summary()
        status = read_status(tmp_path / "tel")
        gauges = status["metrics"]["gauges"]
        assert gauges["store.segments_done"] == len(store.segments)
        assert gauges["store.segments_planned"] == len(store.segments)
        assert gauges["store.users_done"] == store.n_users
        assert status["metrics"]["counters"][
            "store.users_done_total"] == store.n_users
        assert "store.prefetch_overlap" in gauges
        dashboard = format_dashboard(status)
        assert "segments" in dashboard and "pipeline" in dashboard


# -- the monitor CLI --------------------------------------------------------


class TestMonitorCli:
    def test_monitor_once_renders_finished_run(self, tmp_path, capsys):
        from repro.cli import main

        live_seen = LiveMetrics()
        with TelemetrySampler(
            collectors=[live_seen.collect], interval_s=5.0,
            status_path=tmp_path, command="serve",
        ):
            live_seen.inc("serve.events_ingested_total", 10)
        assert main(["monitor", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro live telemetry" in out
        assert "[finished]" in out

    def test_monitor_waits_until_finished(self, tmp_path, capsys):
        from repro.cli import main

        sampler = TelemetrySampler(interval_s=0.05, status_path=tmp_path)
        sampler.start()
        finisher = threading.Timer(0.4, sampler.close)
        finisher.start()
        try:
            assert main(["monitor", str(tmp_path), "--interval", "0.1"]) == 0
        finally:
            finisher.join()
            sampler.close()
        assert "[finished]" in capsys.readouterr().out

    def test_monitor_unreachable_target_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["monitor", str(tmp_path / "missing"), "--once"]) == 2
        assert "cannot read telemetry" in capsys.readouterr().err

    def test_monitor_rejects_bad_interval(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["monitor", str(tmp_path), "--interval", "0"]) == 2
        assert "--interval" in capsys.readouterr().err
