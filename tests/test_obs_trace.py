"""Span recording: nesting, ordering, events, ambient context, no-op mode."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import (
    NULL_OBS,
    ObsContext,
    activate,
    current,
    read_trace,
    trace_records,
    write_trace,
)


class TestSpans:
    def test_nesting_parents(self):
        ctx = ObsContext()
        with ctx.span("outer") as outer:
            with ctx.span("middle") as middle:
                with ctx.span("inner"):
                    pass
        by_name = {s.name: s for s in ctx.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == outer.span_id
        assert by_name["inner"].parent_id == middle.span_id

    def test_completion_order_and_start_times(self):
        ctx = ObsContext()
        with ctx.span("a"):
            with ctx.span("b"):
                pass
        # Recorded on exit: inner closes first.
        assert [s.name for s in ctx.spans] == ["b", "a"]
        a, b = ctx.spans[1], ctx.spans[0]
        assert a.start_s <= b.start_s <= b.end_s <= a.end_s
        assert a.duration_s >= 0

    def test_sibling_ordering(self):
        ctx = ObsContext()
        for name in ("s1", "s2", "s3"):
            with ctx.span(name):
                pass
        assert [s.name for s in ctx.spans] == ["s1", "s2", "s3"]
        assert all(s.parent_id is None for s in ctx.spans)
        ids = [s.span_id for s in ctx.spans]
        assert ids == sorted(ids)  # allocation order is monotonic

    def test_attrs_and_annotate(self):
        ctx = ObsContext()
        with ctx.span("stage.match", workers=2) as span:
            span.annotate(shards=4)
        record = ctx.spans[0]
        assert record.attrs == {"workers": 2, "shards": 4}

    def test_exception_annotates_and_propagates(self):
        ctx = ObsContext()
        with pytest.raises(RuntimeError):
            with ctx.span("doomed"):
                raise RuntimeError("boom")
        assert ctx.spans[0].attrs["error"] == "RuntimeError"
        assert not ctx._stack  # stack unwound despite the raise

    def test_events_attach_to_open_span(self):
        ctx = ObsContext()
        with ctx.span("stage.extract") as span:
            ctx.event("runtime.shard_retry", shard_id=3)
        ctx.event("orphan")
        assert ctx.events[0].span_id == span.span_id
        assert ctx.events[0].attrs == {"shard_id": 3}
        assert ctx.events[1].span_id is None

    def test_span_tree_and_named_lookup(self):
        ctx = ObsContext()
        with ctx.span("root") as root:
            with ctx.span("leaf"):
                pass
            with ctx.span("leaf"):
                pass
        assert len(ctx.spans_named("leaf")) == 2
        assert len(ctx.span_tree()[root.span_id]) == 2


class TestAmbientContext:
    def test_default_is_null(self):
        assert current() is NULL_OBS

    def test_activate_and_restore(self):
        ctx = ObsContext()
        with activate(ctx):
            assert current() is ctx
        assert current() is NULL_OBS

    def test_nested_activation_restores_previous(self):
        a, b = ObsContext(), ObsContext()
        with activate(a):
            with activate(b):
                assert current() is b
            assert current() is a
        assert current() is NULL_OBS


class TestThreadLocalOverride:
    """``thread_activate``: per-thread contexts over the global ambient.

    The pipelined segment scheduler gives every lane thread its own
    context; the override must shadow the global one on that thread
    only, restore cleanly (including when nested), and never leak into
    other threads.
    """

    def test_overrides_global_on_this_thread(self):
        from repro.obs import thread_activate

        global_ctx, lane_ctx = ObsContext(), ObsContext()
        with activate(global_ctx):
            with thread_activate(lane_ctx):
                assert current() is lane_ctx
            assert current() is global_ctx

    def test_other_threads_keep_the_global_context(self):
        import threading

        from repro.obs import thread_activate

        global_ctx, lane_ctx = ObsContext(), ObsContext()
        seen = {}

        def other():
            seen["ctx"] = current()

        with activate(global_ctx), thread_activate(lane_ctx):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen["ctx"] is global_ctx

    def test_nested_overrides_restore(self):
        from repro.obs import thread_activate

        a, b = ObsContext(), ObsContext()
        with thread_activate(a):
            with thread_activate(b):
                assert current() is b
            assert current() is a
        assert current() is NULL_OBS

    def test_counts_land_on_the_thread_context(self):
        import threading

        from repro.obs import thread_activate

        global_ctx = ObsContext()
        lane_ctx = ObsContext()

        def lane():
            with thread_activate(lane_ctx):
                current().count("lane.only", 1)

        with activate(global_ctx):
            thread = threading.Thread(target=lane)
            thread.start()
            thread.join()
            current().count("global.only", 1)
        assert lane_ctx.metrics.snapshot()["counters"] == {"lane.only": 1}
        assert global_ctx.metrics.snapshot()["counters"] == {"global.only": 1}


class TestNullObs:
    def test_all_calls_are_noops(self):
        with NULL_OBS.span("anything", x=1) as span:
            span.annotate(y=2)
        NULL_OBS.count("c", 5)
        NULL_OBS.observe("h", 1.0)
        NULL_OBS.set_gauge("g", 2.0)
        NULL_OBS.event("e")
        assert not NULL_OBS.enabled

    def test_disabled_records_nothing(self):
        # Pipeline code paths run against NULL_OBS by default; nothing
        # may leak into a context that was never activated.
        ctx = ObsContext()
        with NULL_OBS.span("ghost"):
            pass
        assert ctx.spans == [] and len(ctx.metrics) == 0


class TestDelta:
    def make_worker_delta(self):
        worker = ObsContext()
        with worker.span("shard.run"):
            with worker.span("matching.round", round=1):
                pass
            worker.count("matching.users_total", 2)
            worker.observe("matching.rounds_per_user", 1.0)
            worker.event("note", k="v")
        return worker.delta()

    def test_delta_is_picklable(self):
        delta = self.make_worker_delta()
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_absorb_reparents_and_remaps(self):
        delta = self.make_worker_delta()
        parent = ObsContext()
        with parent.span("stage.match") as stage:
            pass
        parent.absorb(delta, parent_id=stage.span_id, base_s=stage.start_s,
                      attrs={"shard_id": 7})
        root = parent.spans_named("shard.run")[0]
        assert root.parent_id == stage.span_id
        assert root.attrs["shard_id"] == 7
        inner = parent.spans_named("matching.round")[0]
        assert inner.parent_id == root.span_id
        assert parent.metrics.counter("matching.users_total").value == 2
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))  # no id collisions after remap

    def test_absorb_order_is_deterministic_for_counters(self):
        d1, d2 = self.make_worker_delta(), self.make_worker_delta()
        a, b = ObsContext(), ObsContext()
        a.absorb(d1), a.absorb(d2)
        b.absorb(d2), b.absorb(d1)
        assert a.metrics.snapshot() == b.metrics.snapshot()


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        ctx = ObsContext()
        with ctx.span("root", k=1):
            ctx.event("ping")
        ctx.count("c.total", 3)
        ctx.observe("h.values", 2.5)
        path = write_trace(tmp_path / "trace.jsonl", ctx)
        records = read_trace(path)
        assert records == trace_records(ctx)
        types = {r["type"] for r in records}
        assert types == {"span", "event", "metric"}
        metric = next(r for r in records if r.get("kind") == "counter")
        assert metric == {"type": "metric", "kind": "counter",
                          "name": "c.total", "value": 3}
        histogram = next(r for r in records if r.get("kind") == "histogram")
        assert histogram["count"] == 1 and histogram["p50"] == 2.5
