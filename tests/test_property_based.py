"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MatchConfig, match_user
from repro.core.visits import VisitConfig, extract_visits
from repro.geo import GridIndex, LocalProjection, haversine
from repro.levy.generate import _reflect
from repro.model import GpsPoint
from repro.stats import Ecdf, entropy_from_counts, fit_pareto, ks_distance, pearson
from helpers import make_checkin, make_visit

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
# Millimetre-quantised coordinates: subnormal-magnitude values make the
# naive squared-distance brute force underflow, disagreeing with the
# index over distances of 1e-243 m — noise with no physical meaning.
coords = st.floats(min_value=-50_000, max_value=50_000, allow_nan=False).map(
    lambda v: round(v, 3)
)


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    return [
        (draw(coords), draw(coords), i)
        for i in range(n)
    ]


class TestGridIndexProperties:
    @given(points=point_sets(), qx=coords, qy=coords,
           radius=st.floats(min_value=0, max_value=100_000).map(lambda v: round(v, 3)))
    @settings(max_examples=60, deadline=None)
    def test_within_matches_bruteforce(self, points, qx, qy, radius):
        index = GridIndex(cell_size=1500.0)
        for x, y, item in points:
            index.insert(x, y, item)
        got = sorted(item for _, item in index.within(qx, qy, radius))
        expected = sorted(
            item
            for x, y, item in points
            if (x - qx) ** 2 + (y - qy) ** 2 <= radius * radius
        )
        assert got == expected

    @given(points=point_sets(), qx=coords, qy=coords)
    @settings(max_examples=60, deadline=None)
    def test_nearest_matches_bruteforce(self, points, qx, qy):
        index = GridIndex(cell_size=1500.0)
        for x, y, item in points:
            index.insert(x, y, item)
        dist, _ = index.nearest(qx, qy)
        best = min(math.hypot(x - qx, y - qy) for x, y, _ in points)
        assert math.isclose(dist, best, rel_tol=1e-9, abs_tol=1e-9)


class TestProjectionProperties:
    @given(
        lat=st.floats(min_value=-80, max_value=80),
        lon=st.floats(min_value=-179, max_value=179),
        dx=st.floats(min_value=-30_000, max_value=30_000),
        dy=st.floats(min_value=-30_000, max_value=30_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, lat, lon, dx, dy):
        proj = LocalProjection(lat, lon)
        back = proj.to_plane(*proj.to_geo(dx, dy))
        assert math.isclose(back[0], dx, abs_tol=1e-6)
        assert math.isclose(back[1], dy, abs_tol=1e-6)


class TestEcdfProperties:
    @given(st.lists(finite, min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_monotone_and_bounded(self, sample):
        ecdf = Ecdf.from_sample(sample)
        xs = sorted(sample)
        values = ecdf.evaluate_many(xs)
        assert all(0 <= v <= 1 for v in values)
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert ecdf.evaluate(max(sample)) == 1.0

    @given(st.lists(finite, min_size=1, max_size=100),
           st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_ks_is_a_metric_ish(self, a, b):
        ea, eb = Ecdf.from_sample(a), Ecdf.from_sample(b)
        d = ks_distance(ea, eb)
        assert 0.0 <= d <= 1.0
        assert math.isclose(d, ks_distance(eb, ea))
        assert ks_distance(ea, ea) == 0.0

    @given(st.lists(finite, min_size=1, max_size=100),
           st.floats(min_value=0, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_quantile_evaluate_consistency(self, sample, q):
        ecdf = Ecdf.from_sample(sample)
        value = ecdf.quantile(q)
        assert ecdf.evaluate(value) >= q - 1e-12


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_pareto_fit_valid(self, sample):
        fit = fit_pareto(sample)
        assert fit.xm == min(sample)
        assert fit.alpha > 0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, counts):
        positive = [c for c in counts if c > 0]
        if not positive:
            return
        h = entropy_from_counts(positive)
        assert 0.0 <= h <= math.log2(len(positive)) + 1e-9

    @given(st.lists(st.tuples(finite, finite), min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded(self, pairs):
        xs = [a for a, _ in pairs]
        ys = [b for _, b in pairs]
        assert -1.0 <= pearson(xs, ys) <= 1.0


class TestReflectProperties:
    @given(value=st.floats(min_value=-1e7, max_value=1e7, allow_nan=False),
           size=st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=100, deadline=None)
    def test_always_in_bounds(self, value, size):
        folded = _reflect(value, size)
        assert 0.0 <= folded <= size


@st.composite
def matching_scenarios(draw):
    n_visits = draw(st.integers(min_value=0, max_value=12))
    n_checkins = draw(st.integers(min_value=0, max_value=12))
    visits = []
    t = 0.0
    for i in range(n_visits):
        t += draw(st.floats(min_value=60, max_value=7200))
        dur = draw(st.floats(min_value=360, max_value=7200))
        visits.append(
            make_visit(
                f"v{i}",
                x=draw(st.floats(min_value=0, max_value=5000)),
                y=draw(st.floats(min_value=0, max_value=5000)),
                t_start=t,
                t_end=t + dur,
            )
        )
        t += dur
    checkins = [
        make_checkin(
            f"c{i}",
            x=draw(st.floats(min_value=0, max_value=5000)),
            y=draw(st.floats(min_value=0, max_value=5000)),
            t=draw(st.floats(min_value=0, max_value=t + 3600)),
        )
        for i in range(n_checkins)
    ]
    return checkins, visits


class TestMatchingProperties:
    @given(scenario=matching_scenarios(), rematch=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_validity(self, scenario, rematch):
        checkins, visits = scenario
        result = match_user(checkins, visits, MatchConfig(rematch_losers=rematch))
        # Every checkin lands in exactly one bucket; every visit too.
        assert len(result.matches) + len(result.extraneous) == len(checkins)
        assert len(result.matches) + len(result.missing) == len(visits)
        matched_visits = [v.visit_id for _, v in result.matches]
        assert len(matched_visits) == len(set(matched_visits))
        matched_checkins = [c.checkin_id for c, _ in result.matches]
        assert len(matched_checkins) == len(set(matched_checkins))
        # Every match satisfies the α/β thresholds.
        for checkin, visit in result.matches:
            assert math.hypot(checkin.x - visit.x, checkin.y - visit.y) <= 500.0
            assert visit.time_distance(checkin.t) <= 1800.0


@st.composite
def gps_traces(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    t = 0.0
    x = draw(st.floats(min_value=0, max_value=10_000))
    y = draw(st.floats(min_value=0, max_value=10_000))
    points = []
    for _ in range(n):
        t += 60.0
        x += draw(st.floats(min_value=-500, max_value=500))
        y += draw(st.floats(min_value=-500, max_value=500))
        points.append(GpsPoint(t=t, x=x, y=y))
    return points


class TestVisitExtractionProperties:
    @given(points=gps_traces())
    @settings(max_examples=60, deadline=None)
    def test_visits_well_formed(self, points):
        visits = extract_visits(points, "u0", VisitConfig())
        for visit in visits:
            assert visit.duration >= 360.0
        for a, b in zip(visits, visits[1:]):
            assert a.t_end <= b.t_start
        times = {p.t for p in points}
        for visit in visits:
            assert visit.t_start in times
            assert visit.t_end in times
