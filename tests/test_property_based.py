"""Property-based tests (hypothesis) on core data structures and invariants."""

import atexit
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MatchConfig, match_dataset, match_user
from repro.core.visits import VisitConfig, extract_visits
from repro.geo import GridIndex, LocalProjection, haversine
from repro.levy.generate import _reflect
from repro.model import GpsPoint
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.stats import Ecdf, entropy_from_counts, fit_pareto, ks_distance, pearson
from helpers import make_checkin, make_dataset, make_user, make_visit

_POOL = None


def shared_pool() -> ParallelExecutor:
    """One lazily created 2-worker pool for all executor properties."""
    global _POOL
    if _POOL is None:
        _POOL = ParallelExecutor(workers=2)
        atexit.register(_POOL.close)
    return _POOL

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
# Millimetre-quantised coordinates: subnormal-magnitude values make the
# naive squared-distance brute force underflow, disagreeing with the
# index over distances of 1e-243 m — noise with no physical meaning.
coords = st.floats(min_value=-50_000, max_value=50_000, allow_nan=False).map(
    lambda v: round(v, 3)
)


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    return [
        (draw(coords), draw(coords), i)
        for i in range(n)
    ]


class TestGridIndexProperties:
    @given(points=point_sets(), qx=coords, qy=coords,
           radius=st.floats(min_value=0, max_value=100_000).map(lambda v: round(v, 3)))
    @settings(max_examples=60, deadline=None)
    def test_within_matches_bruteforce(self, points, qx, qy, radius):
        index = GridIndex(cell_size=1500.0)
        for x, y, item in points:
            index.insert(x, y, item)
        got = sorted(item for _, item in index.within(qx, qy, radius))
        expected = sorted(
            item
            for x, y, item in points
            if (x - qx) ** 2 + (y - qy) ** 2 <= radius * radius
        )
        assert got == expected

    @given(points=point_sets(), qx=coords, qy=coords)
    @settings(max_examples=60, deadline=None)
    def test_nearest_matches_bruteforce(self, points, qx, qy):
        index = GridIndex(cell_size=1500.0)
        for x, y, item in points:
            index.insert(x, y, item)
        dist, _ = index.nearest(qx, qy)
        best = min(math.hypot(x - qx, y - qy) for x, y, _ in points)
        assert math.isclose(dist, best, rel_tol=1e-9, abs_tol=1e-9)


class TestProjectionProperties:
    @given(
        lat=st.floats(min_value=-80, max_value=80),
        lon=st.floats(min_value=-179, max_value=179),
        dx=st.floats(min_value=-30_000, max_value=30_000),
        dy=st.floats(min_value=-30_000, max_value=30_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, lat, lon, dx, dy):
        proj = LocalProjection(lat, lon)
        back = proj.to_plane(*proj.to_geo(dx, dy))
        assert math.isclose(back[0], dx, abs_tol=1e-6)
        assert math.isclose(back[1], dy, abs_tol=1e-6)


class TestEcdfProperties:
    @given(st.lists(finite, min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_monotone_and_bounded(self, sample):
        ecdf = Ecdf.from_sample(sample)
        xs = sorted(sample)
        values = ecdf.evaluate_many(xs)
        assert all(0 <= v <= 1 for v in values)
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert ecdf.evaluate(max(sample)) == 1.0

    @given(st.lists(finite, min_size=1, max_size=100),
           st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_ks_is_a_metric_ish(self, a, b):
        ea, eb = Ecdf.from_sample(a), Ecdf.from_sample(b)
        d = ks_distance(ea, eb)
        assert 0.0 <= d <= 1.0
        assert math.isclose(d, ks_distance(eb, ea))
        assert ks_distance(ea, ea) == 0.0

    @given(st.lists(finite, min_size=1, max_size=100),
           st.floats(min_value=0, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_quantile_evaluate_consistency(self, sample, q):
        ecdf = Ecdf.from_sample(sample)
        value = ecdf.quantile(q)
        assert ecdf.evaluate(value) >= q - 1e-12


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_pareto_fit_valid(self, sample):
        fit = fit_pareto(sample)
        assert fit.xm == min(sample)
        assert fit.alpha > 0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, counts):
        positive = [c for c in counts if c > 0]
        if not positive:
            return
        h = entropy_from_counts(positive)
        assert 0.0 <= h <= math.log2(len(positive)) + 1e-9

    @given(st.lists(st.tuples(finite, finite), min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded(self, pairs):
        xs = [a for a, _ in pairs]
        ys = [b for _, b in pairs]
        assert -1.0 <= pearson(xs, ys) <= 1.0


class TestReflectProperties:
    @given(value=st.floats(min_value=-1e7, max_value=1e7, allow_nan=False),
           size=st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=100, deadline=None)
    def test_always_in_bounds(self, value, size):
        folded = _reflect(value, size)
        assert 0.0 <= folded <= size


@st.composite
def matching_scenarios(draw):
    n_visits = draw(st.integers(min_value=0, max_value=12))
    n_checkins = draw(st.integers(min_value=0, max_value=12))
    visits = []
    t = 0.0
    for i in range(n_visits):
        t += draw(st.floats(min_value=60, max_value=7200))
        dur = draw(st.floats(min_value=360, max_value=7200))
        visits.append(
            make_visit(
                f"v{i}",
                x=draw(st.floats(min_value=0, max_value=5000)),
                y=draw(st.floats(min_value=0, max_value=5000)),
                t_start=t,
                t_end=t + dur,
            )
        )
        t += dur
    checkins = [
        make_checkin(
            f"c{i}",
            x=draw(st.floats(min_value=0, max_value=5000)),
            y=draw(st.floats(min_value=0, max_value=5000)),
            t=draw(st.floats(min_value=0, max_value=t + 3600)),
        )
        for i in range(n_checkins)
    ]
    return checkins, visits


def assert_matching_invariants(checkins, visits, result, config):
    """The matcher's full contract, shared by all executor paths."""
    # Every checkin is honest XOR extraneous (exactly one bucket, no dupes).
    honest_ids = {c.checkin_id for c, _ in result.matches}
    extraneous_ids = {c.checkin_id for c in result.extraneous}
    assert len(result.matches) + len(result.extraneous) == len(checkins)
    assert not (honest_ids & extraneous_ids)
    assert honest_ids | extraneous_ids == {c.checkin_id for c in checkins}
    # Every visit is matched XOR missing.
    matched_visits = [v.visit_id for _, v in result.matches]
    missing_ids = {v.visit_id for v in result.missing}
    assert len(result.matches) + len(result.missing) == len(visits)
    assert not (set(matched_visits) & missing_ids)
    assert set(matched_visits) | missing_ids == {v.visit_id for v in visits}
    # No visit claimed twice; no checkin matched twice.
    assert len(matched_visits) == len(set(matched_visits))
    assert len(honest_ids) == len(result.matches)
    # Every match satisfies the α/β thresholds.
    for checkin, visit in result.matches:
        assert math.hypot(checkin.x - visit.x, checkin.y - visit.y) <= config.alpha_m
        assert visit.time_distance(checkin.t) <= config.beta_s


class TestMatchingProperties:
    @given(scenario=matching_scenarios(), rematch=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_validity(self, scenario, rematch):
        checkins, visits = scenario
        config = MatchConfig(rematch_losers=rematch)
        result = match_user(checkins, visits, config)
        assert_matching_invariants(checkins, visits, result, config)

    @given(scenario=matching_scenarios(), rounds=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_conservation_under_round_cap(self, scenario, rounds):
        # The rematch round cap must never leak or duplicate a checkin.
        checkins, visits = scenario
        config = MatchConfig(rematch_losers=True, max_rematch_rounds=rounds)
        result = match_user(checkins, visits, config)
        assert_matching_invariants(checkins, visits, result, config)


@st.composite
def dataset_scenarios(draw, n_users=3):
    """A small multi-user dataset with visits attached (matcher input)."""
    users = []
    for u in range(n_users):
        checkins, visits = draw(matching_scenarios())
        user_id = f"u{u}"
        users.append(
            make_user(
                user_id,
                checkins=[
                    make_checkin(f"{user_id}-{c.checkin_id}", user_id=user_id,
                                 x=c.x, y=c.y, t=c.t)
                    for c in checkins
                ],
                visits=[
                    make_visit(f"{user_id}-{v.visit_id}", user_id=user_id,
                               x=v.x, y=v.y, t_start=v.t_start, t_end=v.t_end)
                    for v in visits
                ],
            )
        )
    return make_dataset(users)


class TestExecutorEquivalence:
    """The runtime determinism guarantee as a property: serial and
    process-pool executors agree on every generated dataset."""

    @given(dataset=dataset_scenarios(), rematch=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_invariants_hold_through_both_executors(self, dataset, rematch):
        config = MatchConfig(rematch_losers=rematch)
        serial = match_dataset(dataset, config, executor=SerialExecutor())
        parallel = match_dataset(dataset, config, executor=shared_pool())
        for user_id, data in dataset.users.items():
            for result in (serial.per_user[user_id], parallel.per_user[user_id]):
                assert_matching_invariants(data.checkins, data.visits, result, config)

    @given(dataset=dataset_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_executors_agree_exactly(self, dataset):
        serial = match_dataset(dataset, executor=SerialExecutor())
        parallel = match_dataset(dataset, executor=shared_pool())
        assert list(serial.per_user) == list(parallel.per_user)
        for user_id in serial.per_user:
            a, b = serial.per_user[user_id], parallel.per_user[user_id]
            assert [(c.checkin_id, v.visit_id) for c, v in a.matches] == [
                (c.checkin_id, v.visit_id) for c, v in b.matches
            ]
            assert [c.checkin_id for c in a.extraneous] == [
                c.checkin_id for c in b.extraneous
            ]
            assert [v.visit_id for v in a.missing] == [v.visit_id for v in b.missing]


@st.composite
def gps_traces(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    t = 0.0
    x = draw(st.floats(min_value=0, max_value=10_000))
    y = draw(st.floats(min_value=0, max_value=10_000))
    points = []
    for _ in range(n):
        t += 60.0
        x += draw(st.floats(min_value=-500, max_value=500))
        y += draw(st.floats(min_value=-500, max_value=500))
        points.append(GpsPoint(t=t, x=x, y=y))
    return points


class TestVisitExtractionProperties:
    @given(points=gps_traces())
    @settings(max_examples=60, deadline=None)
    def test_visits_well_formed(self, points):
        visits = extract_visits(points, "u0", VisitConfig())
        for visit in visits:
            assert visit.duration >= 360.0
        for a, b in zip(visits, visits[1:]):
            assert a.t_end <= b.t_start
        times = {p.t for p in points}
        for visit in visits:
            assert visit.t_start in times
            assert visit.t_end in times
