"""Determinism of the parallel validation runtime.

The contract (see repro/runtime): for any worker count, the sharded
pipeline returns results identical to the serial reference — same
per-user match pairs, same counts, same classification labels, same
``summary()`` text, same iteration order.  The suite runs a seeded
synthetic study through workers ∈ {1, 2, 4} and compares against
workers=None (the serial path), plus unit tests of the sharding/merge
machinery the guarantee rests on.
"""

from __future__ import annotations

import pytest

from repro.core import MatchConfig, match_dataset, validate
from repro.core.visits import extract_dataset_visits
from repro.runtime import (
    ParallelExecutor,
    RuntimeConfigError,
    SerialExecutor,
    Shard,
    merge_user_maps,
    resolve_executor,
    shard_dataset,
    user_weight,
)
from repro.synth import generate_dataset, primary_config

from helpers import make_dataset, make_user

#: Small but non-trivial: ~7 users, every checkin class populated.
STUDY_SCALE = 0.03


def fresh_study():
    """A fresh, identically-seeded raw dataset per run (no shared state)."""
    return generate_dataset(primary_config().scaled(STUDY_SCALE))


def fingerprint(report):
    """Everything that must be invariant across worker counts."""
    return {
        "user_order": list(report.matching.per_user),
        "pairs": {
            user_id: [(c.checkin_id, v.visit_id) for c, v in m.matches]
            for user_id, m in report.matching.per_user.items()
        },
        "extraneous": {
            user_id: [c.checkin_id for c in m.extraneous]
            for user_id, m in report.matching.per_user.items()
        },
        "missing": {
            user_id: [v.visit_id for v in m.missing]
            for user_id, m in report.matching.per_user.items()
        },
        "counts": (
            report.matching.n_honest,
            report.matching.n_extraneous,
            report.matching.n_missing,
        ),
        "labels": report.classification.labels,
        "summary": report.summary(),
    }


class TestPipelineDeterminism:
    @pytest.fixture(scope="class")
    def serial_fingerprint(self):
        return fingerprint(validate(fresh_study()))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_validate_matches_serial(self, workers, serial_fingerprint):
        report = validate(fresh_study(), workers=workers)
        assert fingerprint(report) == serial_fingerprint

    def test_timings_recorded(self):
        report = validate(fresh_study(), workers=2)
        assert [s.stage for s in report.timings.stages] == [
            "extract",
            "match",
            "classify",
        ]
        for stage in report.timings.stages:
            assert stage.executor == "parallel"
            assert stage.workers == 2
            assert stage.shards and all(s.wall_s >= 0 for s in stage.shards)
        assert report.timings.wall_s > 0
        assert "extract" in report.timings.format_report()

    def test_extraction_identical_across_executors(self):
        serial = extract_dataset_visits(fresh_study())
        parallel = extract_dataset_visits(fresh_study(), workers=2)
        for user_id, data in serial.users.items():
            assert parallel.users[user_id].visits == data.visits

    def test_matching_identical_with_shared_pool(self):
        # One explicit executor reused across calls (the pool-reuse API).
        serial = extract_dataset_visits(fresh_study())
        with ParallelExecutor(workers=2) as executor:
            a = match_dataset(serial, executor=executor)
            b = match_dataset(serial, MatchConfig(rematch_losers=True), executor=executor)
        assert {u: [(c.checkin_id, v.visit_id) for c, v in m.matches]
                for u, m in a.per_user.items()} == {
            u: [(c.checkin_id, v.visit_id) for c, v in m.matches]
            for u, m in match_dataset(serial).per_user.items()
        }
        assert b.n_honest >= a.n_honest  # rematching can only add matches


class TestSharding:
    def make(self, weights):
        users = [
            make_user(f"u{i}", checkins=[], visits=[]) for i in range(len(weights))
        ]
        dataset = make_dataset(users)
        table = {f"u{i}": w for i, w in enumerate(weights)}
        return dataset, lambda data: table[data.user_id]

    def test_balances_by_weight_not_count(self):
        dataset, weight_fn = self.make([100, 1, 1, 1, 1, 96])
        shards = shard_dataset(dataset, 2, weight_fn=weight_fn)
        loads = sorted(shard.weight for shard in shards)
        assert loads == [100, 100]  # LPT: heavy users isolated, light ones pooled

    def test_deterministic_and_ordered(self):
        dataset, weight_fn = self.make([5, 3, 8, 1, 2, 7, 4, 6])
        a = shard_dataset(dataset, 3, weight_fn=weight_fn)
        b = shard_dataset(dataset, 3, weight_fn=weight_fn)
        assert a == b
        order = {user_id: i for i, user_id in enumerate(dataset.users)}
        for shard in a:
            positions = [order[u] for u in shard.user_ids]
            assert positions == sorted(positions)

    def test_partition_is_exact(self):
        dataset, weight_fn = self.make(list(range(1, 12)))
        shards = shard_dataset(dataset, 4, weight_fn=weight_fn)
        seen = [u for shard in shards for u in shard.user_ids]
        assert sorted(seen) == sorted(dataset.users)
        assert len(seen) == len(set(seen))

    def test_more_shards_than_users(self):
        dataset, weight_fn = self.make([1, 2])
        shards = shard_dataset(dataset, 8, weight_fn=weight_fn)
        assert len(shards) == 2  # empty shards are dropped

    def test_rejects_bad_shard_count(self):
        dataset, _ = self.make([1])
        with pytest.raises(RuntimeConfigError):
            shard_dataset(dataset, 0)

    def test_default_weight_uses_gps_before_extraction(self):
        extracted = make_user("u0", checkins=[], visits=[])
        raw = make_user("u1", gps=[], checkins=[])
        assert user_weight(extracted) == 0
        assert user_weight(raw) >= 1


class TestMergeAndResolve:
    def dataset(self):
        return make_dataset([make_user("u0"), make_user("u1"), make_user("u2")])

    def test_merge_restores_dataset_order(self):
        merged = merge_user_maps(self.dataset(), [{"u2": 2, "u0": 0}, {"u1": 1}])
        assert list(merged) == ["u0", "u1", "u2"]

    def test_merge_rejects_overlap_missing_unknown(self):
        with pytest.raises(ValueError, match="more than one shard"):
            merge_user_maps(self.dataset(), [{"u0": 1}, {"u0": 2, "u1": 1, "u2": 1}])
        with pytest.raises(ValueError, match="missed"):
            merge_user_maps(self.dataset(), [{"u0": 1}])
        with pytest.raises(ValueError, match="unknown"):
            merge_user_maps(self.dataset(), [{"u0": 1, "u1": 1, "u2": 1, "zz": 1}])

    def test_resolve_executor_conventions(self):
        executor, owned = resolve_executor(None, None)
        assert isinstance(executor, SerialExecutor) and owned
        executor, owned = resolve_executor(None, 1)
        assert isinstance(executor, SerialExecutor) and owned
        executor, owned = resolve_executor(None, 3)
        assert isinstance(executor, ParallelExecutor) and owned
        assert executor.workers == 3
        executor.close()
        mine = SerialExecutor()
        executor, owned = resolve_executor(mine, None)
        assert executor is mine and not owned
        with pytest.raises(RuntimeConfigError):
            resolve_executor(mine, 2)
        with pytest.raises(RuntimeConfigError):
            resolve_executor(None, -1)
