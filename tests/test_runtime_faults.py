"""Fault-injection suite: the resilience layer under scripted failures.

Every fault here comes from a deterministic :class:`FaultPlan` keyed by
``(stage, shard_id, attempt)`` — worker crashes (``os._exit`` inside the
work unit), injected exceptions, and delays that trip the per-shard
timeout.  The invariants under test:

* a recovered run (crash, exception, or timeout) is byte-identical to a
  clean serial run — the recovery path never leaks into results;
* ``skip_and_report`` surfaces the exact skipped user ids on the report
  and its health record, never silently dropping users;
* retry/rebuild/fallback counters land in the metrics snapshot (and
  thus the manifest) for any worker count;
* the executors stay usable after a failure (cancelled siblings, pool
  reset on ``BrokenProcessPool``).
"""

from __future__ import annotations

import json
import os
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.core import validate, validate_store
from repro.io import load_dataset
from repro.obs import ObsContext, activate, build_manifest
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    ParallelExecutor,
    ResilienceConfig,
    RunHealth,
    SerialExecutor,
    ShardError,
    WorkUnitError,
    merge_user_maps,
)
from repro.runtime.faults import inject
from repro.synth import generate_dataset, generate_study_store, primary_config

from helpers import make_dataset, make_user

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"

#: Small but non-trivial synthetic study (~7 users).
STUDY_SCALE = 0.03

#: No backoff sleeps in tests — determinism does not need real waiting.
FAST = dict(backoff_base_s=0.0)


def fresh_study():
    return generate_dataset(primary_config().scaled(STUDY_SCALE))


def plan_of(*faults: FaultSpec) -> FaultPlan:
    return FaultPlan(faults=tuple(faults))


@pytest.fixture
def two_real_workers(monkeypatch):
    """Force the pool to really hold two processes even on a 1-CPU host.

    ``ParallelExecutor`` caps pool size at the usable CPU count; on a
    single-CPU host a sleeping straggler then blocks queued siblings
    into spurious extra timeouts.  Timeout tests need a genuinely
    concurrent second worker for exact counter expectations.
    """
    from repro.runtime import executor as executor_module

    monkeypatch.setattr(executor_module, "available_workers", lambda: 2)


# ---------------------------------------------------------------------------
# FaultPlan: pure, validated, JSON round-trippable
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_lookup_is_exact_and_pure(self):
        plan = plan_of(
            FaultSpec("extract", 0, 1, "crash"),
            FaultSpec("match", 1, 2, "delay", delay_s=0.5),
        )
        for _ in range(3):  # pure: same answer every time
            assert plan.lookup("extract", 0, 1).kind == "crash"
            assert plan.lookup("extract", 0, 2) is None
            assert plan.lookup("extract", 1, 1) is None
            assert plan.lookup("match", 1, 2).delay_s == 0.5

    def test_json_round_trip(self, tmp_path):
        plan = plan_of(
            FaultSpec("extract", 0, 1, "crash"),
            FaultSpec("classify", 2, 3, "exception"),
            FaultSpec("match", 1, 1, "delay", delay_s=2.0),
        )
        path = plan.write(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan
        # and the on-disk shape is the documented one
        data = json.loads(path.read_text())
        assert {entry["kind"] for entry in data["faults"]} == {
            "crash", "exception", "delay",
        }

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("extract", 0, 1, "meteor")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("extract", 0, 0, "crash")
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec("extract", 0, 1, "delay")
        with pytest.raises(ValueError, match="duplicate"):
            plan_of(FaultSpec("a", 0, 1, "crash"), FaultSpec("a", 0, 1, "exception"))
        with pytest.raises(ValueError, match="faults"):
            FaultPlan.from_dict({})

    def test_attempt_defaults_to_first(self):
        plan = FaultPlan.from_dict(
            {"faults": [{"stage": "match", "shard_id": 1, "kind": "exception"}]}
        )
        assert plan.lookup("match", 1, 1).kind == "exception"

    def test_parent_side_crash_raises_instead_of_exiting(self):
        with pytest.raises(InjectedCrash):
            inject(FaultSpec("x", 0, 1, "crash"), allow_exit=False)
        with pytest.raises(InjectedFault):
            inject(FaultSpec("x", 0, 1, "exception"), allow_exit=True)


# ---------------------------------------------------------------------------
# Executor-level contracts (satellite bugfix)
# ---------------------------------------------------------------------------


def _echo(payload):
    return payload


def _fail_on_bad(payload):
    if payload == "bad":
        raise ValueError("poisoned payload")
    return payload


def _exit_on_die(payload):
    if payload == "die":
        os._exit(3)
    return payload


class TestExecutorFailureContracts:
    def test_serial_map_wraps_failure_with_index(self):
        with pytest.raises(WorkUnitError) as err:
            SerialExecutor().map(_fail_on_bad, ["ok", "bad"])
        assert err.value.index == 1
        assert isinstance(err.value.cause, ValueError)

    def test_parallel_map_wraps_failure_and_stays_usable(self):
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(WorkUnitError) as err:
                executor.map(_fail_on_bad, ["ok", "bad", "ok2"])
            assert err.value.index == 1
            assert isinstance(err.value.cause, ValueError)
            # siblings were cancelled/collected; the pool still works
            assert executor.map(_echo, ["x", "y"]) == ["x", "y"]

    def test_broken_pool_resets_and_executor_is_reusable(self):
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(BrokenProcessPool):
                executor.map(_exit_on_die, ["die", "a", "b"])
            assert executor._pool is None  # dead pool dropped, not cached
            assert executor.map(_echo, ["x", "y"]) == ["x", "y"]


# ---------------------------------------------------------------------------
# Recovery is invisible in results
# ---------------------------------------------------------------------------


class TestRecoveredRunsAreIdentical:
    @pytest.fixture(scope="class")
    def serial_summary(self):
        return validate(fresh_study()).summary()

    def check_identical(self, plan, serial_summary, workers=2, **config):
        health = RunHealth()
        report = validate(
            fresh_study(),
            workers=workers,
            resilience=ResilienceConfig(**{**FAST, **config}),
            fault_plan=plan,
            health=health,
        )
        assert report.summary() == serial_summary
        assert not health.degraded
        return health

    def test_worker_crash_recovers(self, serial_summary):
        health = self.check_identical(
            plan_of(FaultSpec("extract", 0, 1, "crash")), serial_summary
        )
        assert health.pool_rebuilds >= 1
        assert health.retries >= 1

    def test_injected_exception_recovers(self, serial_summary):
        health = self.check_identical(
            plan_of(FaultSpec("match", 1, 1, "exception")), serial_summary
        )
        assert health.retries == 1
        assert health.pool_rebuilds == 0  # an exception does not kill the pool

    def test_slow_shard_times_out_and_recovers(self, serial_summary, two_real_workers):
        health = self.check_identical(
            plan_of(FaultSpec("classify", 0, 1, "delay", delay_s=5.0)),
            serial_summary,
            shard_timeout_s=0.8,
        )
        assert health.timeouts == 1
        assert health.pool_rebuilds >= 1  # straggler's pool was torn down

    def test_poison_shard_falls_back_to_serial(self, serial_summary):
        # Crashes on every pool attempt; only the in-parent serial
        # fallback (attempt 3) is clean.
        plan = plan_of(
            FaultSpec("match", 0, 1, "crash"), FaultSpec("match", 0, 2, "crash")
        )
        health = self.check_identical(plan, serial_summary, max_retries=1)
        assert health.serial_fallbacks >= 1

    def test_serial_executor_retries_in_process(self, serial_summary):
        health = self.check_identical(
            plan_of(FaultSpec("extract", 0, 1, "exception")),
            serial_summary,
            workers=1,
        )
        assert health.retries == 1

    def test_fail_fast_aborts_on_first_failure(self):
        with pytest.raises(ShardError) as err:
            validate(
                fresh_study(),
                workers=2,
                resilience=ResilienceConfig(on_failure="fail_fast", **FAST),
                fault_plan=plan_of(FaultSpec("extract", 1, 1, "exception")),
            )
        assert err.value.stage == "extract"
        assert err.value.shard_id == 1
        assert err.value.attempts == 1

    def test_retry_then_serial_raises_when_even_serial_fails(self):
        # Fault every attempt, including the serial fallback (attempt 4).
        plan = plan_of(
            *(FaultSpec("extract", 0, a, "exception") for a in (1, 2, 3, 4))
        )
        with pytest.raises(ShardError) as err:
            validate(
                fresh_study(),
                workers=2,
                resilience=ResilienceConfig(max_retries=2, **FAST),
                fault_plan=plan,
            )
        assert err.value.attempts == 4


# ---------------------------------------------------------------------------
# Degraded runs: skipped users are loud, never silently missing
# ---------------------------------------------------------------------------


class TestSkipAndReport:
    def run_degraded(self, workers):
        # The extract shard 0 fails on every attempt, serial included.
        plan = plan_of(
            *(FaultSpec("extract", 0, a, "exception") for a in range(1, 6))
        )
        health = RunHealth()
        report = validate(
            fresh_study(),
            workers=workers,
            resilience=ResilienceConfig(
                max_retries=1, on_failure="skip_and_report", **FAST
            ),
            fault_plan=plan,
            health=health,
        )
        return report, health

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exact_skipped_users_surface(self, workers):
        report, health = self.run_degraded(workers)
        assert health.degraded and report.health is health
        [skip] = health.skipped
        assert skip.stage == "extract" and skip.shard_id == 0
        expected_users = set(skip.user_ids)
        assert expected_users  # the shard was not empty
        assert set(health.skipped_user_ids()) == expected_users
        # skipped users are absent downstream, present users are intact
        assert expected_users.isdisjoint(report.matching.per_user)
        assert expected_users.isdisjoint(
            {c.user_id for c in report.classification.checkins.values()}
        )
        # ... and the human-readable summary names them
        for user_id in expected_users:
            assert user_id in report.summary()
        assert "DEGRADED RUN" in report.summary()

    def test_health_report_and_dict_shape(self):
        report, health = self.run_degraded(workers=2)
        data = health.as_dict()
        assert data["degraded"] is True
        assert data["skipped"][0]["user_ids"] == list(health.skipped[0].user_ids)
        assert "DEGRADED" in health.format_report()
        assert health.skipped[0].attempts >= 2

    def test_merge_rejects_unexplained_holes(self):
        dataset = make_dataset([make_user("u0"), make_user("u1")])
        merged = merge_user_maps(dataset, [{"u0": 1}], allow_missing={"u1"})
        assert merged == {"u0": 1}
        with pytest.raises(ValueError, match="missed"):
            merge_user_maps(dataset, [{"u0": 1}], allow_missing={"u0"})


# ---------------------------------------------------------------------------
# Counters reach the manifest for any worker count
# ---------------------------------------------------------------------------


class TestManifestIntegration:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_retry_counters_in_manifest(self, workers):
        ctx = ObsContext()
        with activate(ctx):
            report = validate(
                fresh_study(),
                workers=workers,
                resilience=ResilienceConfig(**FAST),
                fault_plan=plan_of(FaultSpec("match", 0, 1, "exception")),
            )
        manifest = build_manifest(
            "validate",
            dataset=report.dataset,
            workers=workers,
            timings=report.timings.as_dict(),
            metrics=ctx.metrics.snapshot(),
            extra={"health": report.health.as_dict()},
        )
        assert manifest.counter("runtime.shard_retries") == 1
        assert manifest.extra["health"]["retries"] == 1
        assert manifest.extra["health"]["degraded"] is False
        assert "health:" in manifest.format_report()

    def test_retried_shard_attempts_recorded_in_timings(self):
        report = validate(
            fresh_study(),
            workers=2,
            resilience=ResilienceConfig(**FAST),
            fault_plan=plan_of(FaultSpec("match", 0, 1, "exception")),
        )
        match_stage = report.timings.stage("match")
        by_id = {s.shard_id: s for s in match_stage.shards}
        assert by_id[0].attempts == 2
        assert all(s.attempts == 1 for s in match_stage.shards if s.shard_id != 0)
        assert by_id[0].as_dict()["attempts"] == 2


# ---------------------------------------------------------------------------
# Config invariants
# ---------------------------------------------------------------------------


class TestResilienceConfig:
    def test_backoff_is_deterministic_and_bounded(self):
        config = ResilienceConfig(backoff_base_s=0.05, backoff_max_s=0.2)
        assert [config.backoff_s(a) for a in (1, 2, 3, 4)] == [0.05, 0.1, 0.2, 0.2]
        assert ResilienceConfig(backoff_base_s=0.0).backoff_s(7) == 0.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(on_failure="explode")
        with pytest.raises(ValueError):
            ResilienceConfig(shard_timeout_s=0)

    def test_max_attempts(self):
        assert ResilienceConfig(max_retries=0).max_attempts == 1
        assert ResilienceConfig(max_retries=3).max_attempts == 4


# ---------------------------------------------------------------------------
# Acceptance: golden fixture survives one crash + one timeout untouched
# ---------------------------------------------------------------------------


class TestGoldenFaultDrill:
    def test_crash_plus_timeout_is_byte_identical_to_serial(self, two_real_workers):
        serial = validate(load_dataset(GOLDEN_DIR))
        plan = plan_of(
            FaultSpec("extract", 0, 1, "crash"),
            FaultSpec("match", 1, 1, "delay", delay_s=5.0),
        )
        ctx = ObsContext()
        health = RunHealth()
        with activate(ctx):
            recovered = validate(
                load_dataset(GOLDEN_DIR),
                workers=2,
                resilience=ResilienceConfig(
                    on_failure="retry_then_serial", shard_timeout_s=1.0, **FAST
                ),
                fault_plan=plan,
                health=health,
            )
        # Byte-identical report despite a dead worker and a straggler.
        assert recovered.summary() == serial.summary()
        assert recovered.type_counts() == serial.type_counts()
        assert list(recovered.matching.per_user) == list(serial.matching.per_user)
        assert recovered.classification.labels == serial.classification.labels
        # The manifest records the retries and the recovery path.
        manifest = build_manifest(
            "validate",
            dataset=recovered.dataset,
            workers=2,
            timings=recovered.timings.as_dict(),
            metrics=ctx.metrics.snapshot(),
            extra={"health": health.as_dict()},
        )
        assert manifest.counter("runtime.shard_retries") >= 2  # crash + timeout
        assert manifest.counter("runtime.pool_rebuilds") >= 2
        assert manifest.counter("runtime.shard_timeouts") == 1
        assert manifest.extra["health"]["degraded"] is False
        assert manifest.extra["health"]["retries"] == health.retries
        assert health.timeouts == 1 and health.pool_rebuilds >= 2


# ---------------------------------------------------------------------------
# Out-of-core drills: faults while streaming a segment store
# ---------------------------------------------------------------------------


class TestStoreStreamFaultDrill:
    """Crash/resume drills against ``validate_store``'s segment stream.

    Shard ids restart at 0 inside every segment, so one FaultSpec keyed
    to shard 0 attempt 1 fires in *every* segment — each segment loses a
    worker mid-stream and must recover without a trace in the results.
    """

    SEGMENT_USERS = 3

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return generate_study_store(
            primary_config().scaled(STUDY_SCALE),
            tmp_path_factory.mktemp("drill") / "store",
            segment_users=self.SEGMENT_USERS,
        )

    @pytest.fixture(scope="class")
    def clean_summary(self, store):
        return validate_store(store)

    def test_crash_in_every_segment_recovers_byte_identical(
        self, store, clean_summary
    ):
        health = RunHealth()
        summary = validate_store(
            store,
            workers=2,
            resilience=ResilienceConfig(**FAST),
            fault_plan=plan_of(FaultSpec("extract", 0, 1, "crash")),
            health=health,
        )
        assert len(store.segments) > 1
        assert summary.summary() == clean_summary.summary()
        assert summary.visit_counts == clean_summary.visit_counts
        assert not health.degraded
        # the crash really fired once per segment
        assert health.retries >= len(store.segments)

    def test_store_files_stay_intact_through_worker_crashes(self, store):
        validate_store(
            store,
            workers=2,
            resilience=ResilienceConfig(**FAST),
            fault_plan=plan_of(FaultSpec("match", 0, 1, "crash")),
        )
        store.verify()  # no torn segment files, fingerprints intact
        assert list(store.directory.rglob("*.tmp")) == []

    def test_resume_reruns_only_unfinished_segments(
        self, store, clean_summary, tmp_path, monkeypatch
    ):
        ckpt = tmp_path / "ckpt"
        real = store.load_segment
        loaded = []

        def load_or_die(entry, pois=None):
            loaded.append(entry.segment_id)
            if len(loaded) > 2:
                raise RuntimeError("simulated crash mid-stream")
            return real(entry, pois=pois)

        monkeypatch.setattr(store, "load_segment", load_or_die)
        with pytest.raises(RuntimeError, match="mid-stream"):
            validate_store(store, checkpoints=ckpt)
        assert loaded == [0, 1, 2]  # died loading the third segment

        # The two finished segments left atomic checkpoints behind...
        assert len(list(ckpt.glob("ckpt-*.pkl"))) == 2
        assert list(ckpt.glob("*.tmp")) == []

        # ...and the restarted run replays them instead of recomputing.
        loaded.clear()
        monkeypatch.setattr(store, "load_segment", real)
        resumed = validate_store(store, checkpoints=ckpt)
        assert resumed.segments_reused == 2
        assert resumed.summary() == clean_summary.summary()
        assert resumed.visit_counts == clean_summary.visit_counts

    def test_torn_checkpoint_recomputes_instead_of_failing(
        self, store, clean_summary, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        validate_store(store, checkpoints=ckpt)
        victim = sorted(ckpt.glob("ckpt-*.pkl"))[0]
        victim.write_bytes(victim.read_bytes()[:7])  # torn mid-write
        rerun = validate_store(store, checkpoints=ckpt)
        assert rerun.segments_reused == len(store.segments) - 1
        assert rerun.summary() == clean_summary.summary()

    def test_skipped_segment_shard_degrades_loudly(self, store):
        plan = plan_of(
            *(FaultSpec("extract", 0, a, "exception") for a in range(1, 6))
        )
        health = RunHealth()
        summary = validate_store(
            store,
            workers=2,
            resilience=ResilienceConfig(
                max_retries=1, on_failure="skip_and_report", **FAST
            ),
            fault_plan=plan,
            health=health,
        )
        assert health.degraded
        # shard 0 of every segment was skipped, and each skip is its own
        # health record with that segment's exact users
        assert len(health.skipped) == len(store.segments)
        skipped_users = set(health.skipped_user_ids())
        assert skipped_users
        for user_id in skipped_users:
            assert summary.visit_counts[user_id] == -1
            assert user_id in summary.summary()
        assert "DEGRADED RUN" in summary.summary()


class TestPipelinedFaultDrill:
    """Crash/resume drills with segments pipelined across threads.

    With ``inflight_segments > 1`` a failure lands while *other*
    segments are mid-load or mid-compute on their own lanes.  The
    reducer must still checkpoint exactly the finished manifest prefix,
    a resumed run must replay only those, and recovery noise (retries,
    skips, torn checkpoints) must never leak into results.
    """

    SEGMENT_USERS = 3

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return generate_study_store(
            primary_config().scaled(STUDY_SCALE),
            tmp_path_factory.mktemp("pipedrill") / "store",
            segment_users=self.SEGMENT_USERS,
        )

    @pytest.fixture(scope="class")
    def clean_summary(self, store):
        return validate_store(store)

    def test_crash_in_every_segment_recovers_byte_identical(
        self, store, clean_summary
    ):
        health = RunHealth()
        summary = validate_store(
            store,
            workers=2,
            inflight_segments=3,
            resilience=ResilienceConfig(**FAST),
            fault_plan=plan_of(FaultSpec("extract", 0, 1, "crash")),
            health=health,
        )
        assert summary.summary() == clean_summary.summary()
        assert summary.visit_counts == clean_summary.visit_counts
        assert not health.degraded
        assert health.retries >= len(store.segments)

    def test_segment_scoped_fault_fires_only_there(self, store, clean_summary):
        """A FaultSpec with ``segment=`` set leaves other segments alone."""
        health = RunHealth()
        summary = validate_store(
            store,
            workers=2,
            inflight_segments=3,
            resilience=ResilienceConfig(**FAST),
            fault_plan=plan_of(
                FaultSpec("extract", 0, 1, "exception", segment=1)
            ),
            health=health,
        )
        assert summary.summary() == clean_summary.summary()
        assert health.retries == 1  # one segment's shard 0, nobody else's

    def test_segment_load_fault_retries_and_recovers(
        self, store, clean_summary
    ):
        health = RunHealth()
        summary = validate_store(
            store,
            inflight_segments=2,
            resilience=ResilienceConfig(**FAST),
            fault_plan=plan_of(
                FaultSpec("segment.load", 1, 1, "exception", segment=1)
            ),
            health=health,
        )
        assert summary.summary() == clean_summary.summary()
        assert health.retries == 1
        assert not health.degraded

    def test_segment_load_exhaustion_skips_and_reports(self, store):
        plan = plan_of(
            *(
                FaultSpec("segment.load", 1, a, "exception", segment=1)
                for a in range(1, 6)
            )
        )
        health = RunHealth()
        summary = validate_store(
            store,
            inflight_segments=2,
            resilience=ResilienceConfig(
                max_retries=1, on_failure="skip_and_report", **FAST
            ),
            fault_plan=plan,
            health=health,
        )
        assert health.degraded
        assert len(health.skipped) == 1
        assert health.skipped[0].stage == "segment.load"
        skipped_users = set(store.segments[1].user_ids)
        assert set(health.skipped_user_ids()) == skipped_users
        for user_id in skipped_users:
            assert summary.visit_counts[user_id] == -1
        assert "DEGRADED RUN" in summary.summary()

    def test_midflight_kill_resumes_finished_prefix_only(
        self, store, clean_summary, tmp_path, monkeypatch
    ):
        """Die while later segments are mid-load/mid-compute on lanes.

        The prefetch thread is segments ahead of the reducer, so when
        segment 2's load explodes, segments 0 and 1 are in different
        stages (reduced / computing).  Only finished segments may leave
        checkpoints; the resumed run replays exactly those and never
        double-counts one.
        """
        ckpt = tmp_path / "ckpt"
        real = store.load_segment
        loaded = []

        def load_or_die(entry, pois=None):
            loaded.append(entry.segment_id)
            if entry.segment_id == 2:
                raise RuntimeError("simulated crash mid-flight")
            return real(entry, pois=pois)

        monkeypatch.setattr(store, "load_segment", load_or_die)
        # Observed run: checkpoints must carry counter deltas so the
        # resumed run's replay can be audited for double counting.
        with activate(ObsContext()):
            with pytest.raises(RuntimeError, match="mid-flight"):
                validate_store(
                    store, inflight_segments=3, workers=2, checkpoints=ckpt
                )
        # Loads ran ahead of the reducer, but only segments 0 and 1 —
        # the finished prefix — left checkpoints behind.
        assert loaded[:3] == [0, 1, 2]
        names = sorted(p.name for p in ckpt.glob("ckpt-*.pkl"))
        assert [n.split("-")[1] for n in names] == ["00000", "00001"]
        assert list(ckpt.glob("*.tmp")) == []

        monkeypatch.setattr(store, "load_segment", real)
        ctx = ObsContext()
        with activate(ctx):
            resumed = validate_store(
                store, inflight_segments=3, workers=2, checkpoints=ckpt
            )
        assert resumed.segments_reused == 2
        assert resumed.summary() == clean_summary.summary()
        assert resumed.visit_counts == clean_summary.visit_counts
        # No double counting: users tally exactly once across replayed
        # and recomputed segments.
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["matching.users_total"] == store.n_users
        assert counters["store.segments_reused"] == 2
        assert counters["store.segments_total"] == len(store.segments)

    def test_torn_concurrent_checkpoints_recompute(
        self, store, clean_summary, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        validate_store(store, inflight_segments=3, workers=2, checkpoints=ckpt)
        victims = sorted(ckpt.glob("ckpt-*.pkl"))[:2]
        for victim in victims:
            victim.write_bytes(victim.read_bytes()[:7])  # torn mid-write
        rerun = validate_store(
            store, inflight_segments=3, workers=2, checkpoints=ckpt
        )
        assert rerun.segments_reused == len(store.segments) - len(victims)
        assert rerun.summary() == clean_summary.summary()

    def test_degraded_segment_leaves_no_checkpoint(self, store, tmp_path):
        """A skip-and-reported load must recompute next run, not replay."""
        ckpt = tmp_path / "ckpt"
        plan = plan_of(
            *(
                FaultSpec("segment.load", 0, a, "exception", segment=0)
                for a in range(1, 6)
            )
        )
        validate_store(
            store,
            inflight_segments=2,
            resilience=ResilienceConfig(
                max_retries=1, on_failure="skip_and_report", **FAST
            ),
            fault_plan=plan,
            checkpoints=ckpt,
        )
        names = sorted(p.name for p in ckpt.glob("ckpt-*.pkl"))
        assert len(names) == len(store.segments) - 1
        assert all(not n.startswith("ckpt-00000-") for n in names)


class TestSegmentScopedFaultPlan:
    """``FaultSpec.segment`` scoping and the ``for_segment`` view."""

    def test_for_segment_resolves_scoping(self):
        everywhere = FaultSpec("extract", 0, 1, "exception")
        only_two = FaultSpec("match", 0, 1, "crash", segment=2)
        plan = plan_of(everywhere, only_two)
        view = plan.for_segment(2)
        assert view.lookup("extract", 0, 1) is everywhere
        assert view.lookup("match", 0, 1) is only_two
        elsewhere = plan.for_segment(0)
        assert elsewhere.lookup("match", 0, 1) is None
        assert elsewhere.lookup("extract", 0, 1) is everywhere

    def test_unscoped_plan_returns_self(self):
        plan = plan_of(FaultSpec("extract", 0, 1, "exception"))
        assert plan.for_segment(5) is plan

    def test_segment_field_round_trips_json(self, tmp_path):
        plan = plan_of(
            FaultSpec("segment.load", 1, 1, "exception", segment=1),
            FaultSpec("extract", 0, 1, "crash"),
        )
        path = plan.write(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded == plan
        assert loaded.faults[0].segment == 1
        assert loaded.faults[1].segment is None

    def test_rejects_negative_segment(self):
        with pytest.raises(ValueError, match="segment"):
            FaultSpec("extract", 0, 1, "exception", segment=-1)


# ---------------------------------------------------------------------------
# Serving drills: kill the streaming service, resume from snapshots
# ---------------------------------------------------------------------------


class TestServeCrashDrill:
    """Kill the streaming service after every Nth verdict and resume.

    Exactly-once contract: the resumed service replays only events past
    the snapshot cursor, re-emitting at most the verdicts that were
    in flight when the snapshot was cut.  Deduplicating by
    ``(user_id, seq)`` must reconstruct the uninterrupted verdict
    stream exactly — nothing dropped, nothing duplicated with different
    bytes, nothing changed — and the final summary must equal both the
    uninterrupted serve run and the batch pipeline.
    """

    CHECKPOINT_EVERY = 400

    def _reference(self):
        from repro.serve import ValidationService
        from repro.synth import replay_events

        dataset = load_dataset(GOLDEN_DIR)
        events = list(replay_events(dataset))
        service = ValidationService(dataset.pois, name=dataset.name)
        for event in events:
            service.ingest(event)
        summary = service.finish()
        verdicts = {
            user: [v.as_dict() for v in vs]
            for user, vs in service.verdicts.items()
        }
        return dataset, events, verdicts, summary

    def test_kill_after_every_nth_verdict_loses_nothing(self, tmp_path):
        from repro.serve import ValidationService

        dataset, events, reference, ref_summary = self._reference()
        total = sum(len(v) for v in reference.values())
        assert total > 0
        kill_every = 10

        for threshold in range(kill_every, total + 1, kill_every):
            store_dir = tmp_path / f"kill-{threshold}"
            seen = {}  # (user, seq) -> verdict dict, across incarnations

            def absorb(verdict, seen=seen):
                key = (verdict.user_id, verdict.seq)
                record = verdict.as_dict()
                if key in seen:
                    # Duplicates from replay must be byte-identical.
                    assert seen[key] == record
                seen[key] = record

            # First incarnation: crash once >= threshold verdicts out.
            service = ValidationService(
                dataset.pois, name=dataset.name,
                state_store=store_dir,
                checkpoint_every=self.CHECKPOINT_EVERY,
                sink=absorb,
            )
            crashed_mid_stream = False
            for event in events:
                service.ingest(event)
                if service.verdicts_emitted >= threshold:
                    crashed_mid_stream = True
                    break
            # High thresholds only complete at finish(); killing after
            # the last event but before finish() is a drill point too.
            service.close()  # abandon: no finish(), no final snapshot
            if threshold == kill_every:
                # The fixture settles chunks mid-stream, so the first
                # threshold must hit while events are still flowing.
                assert crashed_mid_stream

            # Second incarnation: restore, replay the tail, finish.
            resumed = ValidationService(
                dataset.pois, name=dataset.name,
                state_store=store_dir,
                checkpoint_every=self.CHECKPOINT_EVERY,
                sink=absorb,
            )
            cursor = resumed.restore()
            assert 0 <= cursor < len(events)
            for event in events[cursor:]:
                resumed.ingest(event)
            summary = resumed.finish()

            # Nothing dropped, duplicated or changed.
            rebuilt = {}
            for (user, seq), record in sorted(seen.items()):
                rebuilt.setdefault(user, []).append(record)
            assert rebuilt == reference, f"threshold={threshold}"
            assert summary.n_verdicts == ref_summary.n_verdicts
            assert summary.summary() == ref_summary.summary()

    def test_torn_snapshot_falls_back_to_fresh_start(self, tmp_path):
        """A truncated user state file invalidates the whole snapshot:
        restore() returns 0 and a full replay is still byte-identical."""
        from repro.serve import ValidationService

        dataset, events, reference, ref_summary = self._reference()
        store_dir = tmp_path / "torn"
        service = ValidationService(
            dataset.pois, name=dataset.name,
            state_store=store_dir, checkpoint_every=self.CHECKPOINT_EVERY,
        )
        for event in events[: len(events) // 2]:
            service.ingest(event)
        service.snapshot()
        service.close()
        user_files = sorted(store_dir.glob("serve-user-*.pkl"))
        assert user_files
        user_files[0].write_bytes(user_files[0].read_bytes()[:11])

        resumed = ValidationService(
            dataset.pois, name=dataset.name, state_store=store_dir,
        )
        assert resumed.restore() == 0
        for event in events:
            resumed.ingest(event)
        summary = resumed.finish()
        assert {
            user: [v.as_dict() for v in vs]
            for user, vs in resumed.verdicts.items()
        } == reference
        assert summary.summary() == ref_summary.summary()

    def test_batch_agreement_survives_resume(self, tmp_path):
        """The resumed run's summary still equals batch validate()."""
        from repro.serve import ValidationService

        dataset, events, _, _ = self._reference()
        batch = validate(load_dataset(GOLDEN_DIR))
        store_dir = tmp_path / "resume"
        service = ValidationService(
            dataset.pois, name=dataset.name,
            state_store=store_dir, checkpoint_every=self.CHECKPOINT_EVERY,
        )
        for event in events[: 2 * len(events) // 3]:
            service.ingest(event)
        service.snapshot()
        service.close()

        resumed = ValidationService(
            dataset.pois, name=dataset.name, state_store=store_dir,
        )
        cursor = resumed.restore()
        assert cursor > 0
        for event in events[cursor:]:
            resumed.ingest(event)
        assert resumed.finish().summary() == batch.summary()
