"""Property tests of the runtime's timing and sharding invariants.

Hypothesis-driven: for arbitrary nonnegative shard timings,
``busy_s >= critical_path_s`` and ``imbalance() >= 1``; for arbitrary
user weights and shard counts, sharding conserves weight and partitions
the user set exactly.  Plus the ``StageTiming.imbalance()`` degenerate
cases the dataclass used to handle asymmetrically.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Shard, ShardTiming, StageTiming, shard_dataset

from helpers import make_dataset, make_user

durations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=0, max_size=40
)


def stage_of(walls):
    stage = StageTiming(stage="t", executor="serial", workers=1)
    for i, wall in enumerate(walls):
        stage.shards.append(ShardTiming(shard_id=i, n_users=1, weight=1, wall_s=wall))
    return stage


class TestTimingInvariants:
    @given(durations)
    @settings(max_examples=200, deadline=None)
    def test_busy_at_least_critical_path(self, walls):
        stage = stage_of(walls)
        assert stage.busy_s >= stage.critical_path_s

    @given(durations)
    @settings(max_examples=200, deadline=None)
    def test_imbalance_at_least_one(self, walls):
        # max >= mean for nonnegative values, so imbalance >= 1 (small
        # float slack: busy_s is a sum of up to 40 terms).
        assert stage_of(walls).imbalance() >= 1.0 - 1e-9

    @given(durations)
    @settings(max_examples=200, deadline=None)
    def test_imbalance_is_finite_for_real_timings(self, walls):
        assert math.isfinite(stage_of(walls).imbalance())

    def test_no_shards_is_balanced(self):
        assert stage_of([]).imbalance() == 1.0

    def test_all_zero_durations_is_balanced(self):
        # The degenerate case: mean 0 AND critical path 0 means nothing
        # ran long enough to measure — balanced by definition, not an
        # accidental division fallback.
        stage = stage_of([0.0, 0.0, 0.0])
        assert stage.critical_path_s == 0.0
        assert stage.imbalance() == 1.0

    def test_positive_critical_path_with_zero_mean_is_unbounded(self):
        # Unreachable through run_stage (busy >= critical for nonneg
        # walls) but constructible by hand; must not read as "balanced".
        stage = stage_of([0.0])
        stage.shards[0] = ShardTiming(shard_id=0, n_users=1, weight=1, wall_s=0.0)
        stage.shards.append(ShardTiming(shard_id=1, n_users=1, weight=1, wall_s=-1.0))
        stage.shards.append(ShardTiming(shard_id=2, n_users=1, weight=1, wall_s=1.0))
        # busy_s == 0, critical_path_s == 1.0 -> inf, asymmetric no more.
        assert stage.busy_s == 0.0 and stage.critical_path_s == 1.0
        assert stage.imbalance() == float("inf")

    @given(durations)
    @settings(max_examples=100, deadline=None)
    def test_as_dict_is_consistent(self, walls):
        stage = stage_of(walls)
        data = stage.as_dict()
        assert data["busy_s"] == stage.busy_s
        assert data["critical_path_s"] == stage.critical_path_s
        assert len(data["shards"]) == len(walls)


weight_lists = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60)


class TestShardingInvariants:
    def build(self, weights):
        users = [make_user(f"u{i:03d}") for i in range(len(weights))]
        dataset = make_dataset(users)
        table = {f"u{i:03d}": w for i, w in enumerate(weights)}
        return dataset, lambda data: table[data.user_id]

    @given(weight_lists, st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_weights_conserved(self, weights, n_shards):
        dataset, weight_fn = self.build(weights)
        shards = shard_dataset(dataset, n_shards, weight_fn=weight_fn)
        assert sum(shard.weight for shard in shards) == sum(weights)

    @given(weight_lists, st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_exact_partition(self, weights, n_shards):
        dataset, weight_fn = self.build(weights)
        shards = shard_dataset(dataset, n_shards, weight_fn=weight_fn)
        seen = [u for shard in shards for u in shard.user_ids]
        assert sorted(seen) == sorted(dataset.users)
        assert len(seen) == len(set(seen))
        assert 1 <= len(shards) <= min(n_shards, len(weights))

    @given(weight_lists, st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_and_dataset_ordered(self, weights, n_shards):
        dataset, weight_fn = self.build(weights)
        a = shard_dataset(dataset, n_shards, weight_fn=weight_fn)
        b = shard_dataset(dataset, n_shards, weight_fn=weight_fn)
        assert a == b
        order = {user_id: i for i, user_id in enumerate(dataset.users)}
        for shard in a:
            positions = [order[u] for u in shard.user_ids]
            assert positions == sorted(positions)

    @given(weight_lists, st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_shard_ids_are_dense(self, weights, n_shards):
        dataset, weight_fn = self.build(weights)
        shards = shard_dataset(dataset, n_shards, weight_fn=weight_fn)
        assert [shard.shard_id for shard in shards] == list(range(len(shards)))
        assert all(isinstance(shard, Shard) and len(shard) > 0 for shard in shards)
