"""The pipelined segment scheduler's ordering, bounding, and failure law.

``run_pipelined`` promises exactly three things, whatever the thread
interleaving: ``reduce`` runs on the caller's thread strictly in item
order; at most ``inflight`` items sit past ``load`` but before their
``reduce``; and when item *i* fails, every item before it is still
reduced before the original exception resurfaces, with later work
discarded.  These tests pin each promise with instrumented callbacks —
no sleeps-as-synchronisation, only events the scheduler itself drives.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime import run_pipelined


def test_reduce_runs_in_order_on_caller_thread():
    items = list(range(8))
    reduced = []
    caller = threading.get_ident()
    reducer_threads = set()

    stats = run_pipelined(
        items,
        load=lambda i, item: item * 10,
        compute=lambda i, item, loaded, lane: loaded + 1,
        reduce=lambda i, item, result: (
            reduced.append((i, result)),
            reducer_threads.add(threading.get_ident()),
        ),
        inflight=3,
        lanes=2,
    )
    assert reduced == [(i, i * 10 + 1) for i in items]
    assert reducer_threads == {caller}
    assert stats["overlap"] + stats["stalls"] == len(items)


def test_results_ordered_even_when_completion_is_reversed():
    """Later items finishing first must not reach the reducer early."""
    first_done = threading.Event()

    def compute(i, item, loaded, lane):
        if i == 0:
            # Item 0 finishes last: wait until item 1 has computed.
            first_done.wait(timeout=10)
        elif i == 1:
            first_done.set()
        return i

    reduced = []
    run_pipelined(
        [0, 1],
        load=lambda i, item: item,
        compute=compute,
        reduce=lambda i, item, result: reduced.append(i),
        inflight=2,
        lanes=2,
    )
    assert reduced == [0, 1]


def test_inflight_bounds_loaded_but_unreduced_items():
    inflight = 2
    lock = threading.Lock()
    outstanding = 0
    peak = 0

    def load(i, item):
        nonlocal outstanding, peak
        with lock:
            outstanding += 1
            peak = max(peak, outstanding)
        return item

    def reduce(i, item, result):
        nonlocal outstanding
        with lock:
            outstanding -= 1

    run_pipelined(
        list(range(10)),
        load=load,
        compute=lambda i, item, loaded, lane: loaded,
        reduce=reduce,
        inflight=inflight,
        lanes=2,
    )
    assert peak <= inflight


def test_failure_reduces_prefix_then_raises():
    class Boom(RuntimeError):
        pass

    reduced = []

    def compute(i, item, loaded, lane):
        if i == 3:
            raise Boom("item 3 exploded")
        return i

    with pytest.raises(Boom, match="item 3 exploded"):
        run_pipelined(
            list(range(6)),
            load=lambda i, item: item,
            compute=compute,
            reduce=lambda i, item, result: reduced.append(i),
            inflight=2,
            lanes=1,
        )
    assert reduced == [0, 1, 2]


def test_load_failure_propagates_with_prefix_reduced():
    class LoadBoom(RuntimeError):
        pass

    reduced = []

    def load(i, item):
        if i == 2:
            raise LoadBoom("segment 2 unreadable")
        return item

    with pytest.raises(LoadBoom, match="segment 2 unreadable"):
        run_pipelined(
            list(range(5)),
            load=load,
            compute=lambda i, item, loaded, lane: loaded,
            reduce=lambda i, item, result: reduced.append(i),
            inflight=3,
            lanes=2,
        )
    assert reduced == [0, 1]


def test_reduce_failure_stops_and_joins_cleanly():
    class ReduceBoom(RuntimeError):
        pass

    def reduce(i, item, result):
        if i == 1:
            raise ReduceBoom("reducer rejected item 1")

    before = threading.active_count()
    with pytest.raises(ReduceBoom):
        run_pipelined(
            list(range(6)),
            load=lambda i, item: item,
            compute=lambda i, item, loaded, lane: loaded,
            reduce=reduce,
            inflight=2,
            lanes=2,
        )
    # All scheduler threads joined — nothing leaked past the failure.
    assert threading.active_count() <= before


def test_empty_items_is_a_noop():
    stats = run_pipelined(
        [],
        load=lambda i, item: item,
        compute=lambda i, item, loaded, lane: loaded,
        reduce=lambda i, item, result: None,
        inflight=4,
        lanes=2,
    )
    assert stats["overlap"] == 0 and stats["stalls"] == 0


def test_invalid_inflight_rejected():
    with pytest.raises(ValueError, match="inflight"):
        run_pipelined(
            [1],
            load=lambda i, item: item,
            compute=lambda i, item, loaded, lane: loaded,
            reduce=lambda i, item, result: None,
            inflight=0,
        )


def test_stats_account_every_item():
    n = 12
    stats = run_pipelined(
        list(range(n)),
        load=lambda i, item: item,
        compute=lambda i, item, loaded, lane: loaded,
        reduce=lambda i, item, result: None,
        inflight=4,
        lanes=3,
    )
    assert stats["overlap"] + stats["stalls"] == n
    assert stats["reduce_wait_s"] >= 0.0
    assert stats["prefetch_stall_s"] >= 0.0


def test_on_progress_called_per_reduce_with_done_and_inflight():
    n = 6
    snapshots = []
    caller = threading.get_ident()
    threads = set()

    def on_progress(snapshot):
        snapshots.append(snapshot)
        threads.add(threading.get_ident())

    run_pipelined(
        list(range(n)),
        load=lambda i, item: item,
        compute=lambda i, item, loaded, lane: loaded,
        reduce=lambda i, item, result: None,
        inflight=2,
        lanes=2,
        on_progress=on_progress,
    )
    assert [s["done"] for s in snapshots] == list(range(1, n + 1))
    assert threads == {caller}
    for snapshot in snapshots:
        # In-flight = loaded but not yet reduced; never negative, never
        # beyond the configured window.
        assert 0 <= snapshot["inflight"] <= 2
        assert snapshot["overlap"] + snapshot["stalls"] == snapshot["done"]
    assert snapshots[-1]["inflight"] == 0


def test_on_progress_exceptions_are_swallowed():
    reduced = []

    def on_progress(snapshot):
        raise RuntimeError("observer bug must not sink the run")

    stats = run_pipelined(
        list(range(4)),
        load=lambda i, item: item,
        compute=lambda i, item, loaded, lane: loaded,
        reduce=lambda i, item, result: reduced.append(i),
        inflight=2,
        lanes=2,
        on_progress=on_progress,
    )
    assert reduced == [0, 1, 2, 3]
    assert stats["overlap"] + stats["stalls"] == 4
