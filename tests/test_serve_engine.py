"""Unit tests of the streaming engine's settlement semantics.

Pins the places where a streaming implementation could *plausibly*
diverge from batch and must not:

* the β-window edge: an event-timeline gap exactly equal to the
  settlement horizon must NOT split a chunk, because a checkin exactly
  β seconds from a visit end still matches (``<=`` in the matcher) —
  the regression that motivates the strict ``>`` cut;
* ``max_rematch_rounds``: round counts, tie-loser totals and verdicts
  must be identical in both paths even when tie-break rematching runs
  multiple rounds in one settled chunk;
* mid-stay deferral: no verdict may be emitted while events are still
  within one horizon of the high-water mark;
* snapshots: state round-trips through the two-slot store, and torn or
  mismatched snapshot files read as absent (fresh start), never as
  corrupt state.
"""

from __future__ import annotations

import pytest

from helpers import make_checkin, make_dataset, make_poi, make_user, stationary_gps
from repro.core import MatchConfig, VisitConfig, validate
from repro.obs import ObsContext, activate, config_hash
from repro.serve import (
    ServeConfig,
    ServeStateStore,
    StreamEngine,
    ValidationService,
)
from repro.synth import replay_events

#: The settlement horizon at default configs (max of β, max_gap, ...).
HORIZON = ServeConfig().settlement_horizon_s()


def both_paths(dataset, config=None, workers=1):
    """(batch report+ctx, serve service+summary+ctx) over ``dataset``."""
    serve_config = config or ServeConfig()
    batch_ctx = ObsContext()
    with activate(batch_ctx):
        report = validate(
            dataset,
            visit_config=serve_config.visit,
            match_config=serve_config.match,
            classify_config=serve_config.classify,
        )
    serve_ctx = ObsContext()
    service = ValidationService(
        dataset.pois, serve_config, name=dataset.name,
        workers=workers, obs=serve_ctx,
    )
    for event in replay_events(dataset):
        service.ingest(event)
    summary = service.finish()
    return report, batch_ctx, service, summary, serve_ctx


def labels_of(service):
    return {
        v.subject_id: v.label
        for verdicts in service.verdicts.values()
        for v in verdicts
        if v.kind == "checkin"
    }


def batch_labels_of(report):
    return {cid: label.value for cid, label in report.classification.labels.items()}


class TestHorizonEdge:
    def test_horizon_is_beta_at_defaults(self):
        config = ServeConfig()
        assert HORIZON == config.match.beta_s == 1800.0

    def test_checkin_exactly_beta_after_visit_still_matches(self):
        """Gap == horizon must not split: the checkin sits exactly β
        after the visit end and batch matches it (``dt <= β``)."""
        gps = stationary_gps(0.0, 0.0, 0.0, 600.0)
        checkin = make_checkin("c0", t=600.0 + HORIZON, x=0.0, y=0.0)
        dataset = make_dataset(
            [make_user("u0", gps=gps, checkins=[checkin])], [make_poi()]
        )
        report, _, service, summary, _ = both_paths(dataset)
        assert batch_labels_of(report) == {"c0": "honest"}
        assert labels_of(service) == {"c0": "honest"}
        assert summary.summary() == report.summary()
        # One chunk: the gap equalled the horizon, so nothing split.
        assert summary.n_chunks == 1

    def test_checkin_just_past_beta_splits_and_stays_extraneous(self):
        """One second past the horizon the chunk splits — and batch
        agrees the checkin is extraneous (dt > β), so splitting is
        exactly as aggressive as it is allowed to be."""
        gps = stationary_gps(0.0, 0.0, 0.0, 600.0)
        checkin = make_checkin("c0", t=601.0 + HORIZON, x=0.0, y=0.0)
        dataset = make_dataset(
            [make_user("u0", gps=gps, checkins=[checkin])], [make_poi()]
        )
        report, _, service, summary, _ = both_paths(dataset)
        assert batch_labels_of(report) == {"c0": "other"}
        assert labels_of(service) == {"c0": "other"}
        assert summary.summary() == report.summary()
        assert summary.n_chunks == 2

    def test_settlement_defers_within_horizon(self):
        """While every event is within one horizon of the high-water
        mark, nothing may settle — verdicts only appear at finish."""
        gps = stationary_gps(0.0, 0.0, 0.0, 600.0)
        checkin = make_checkin("c0", t=300.0, x=0.0, y=0.0)
        dataset = make_dataset(
            [make_user("u0", gps=gps, checkins=[checkin])], [make_poi()]
        )
        service = ValidationService(dataset.pois, name=dataset.name)
        for event in replay_events(dataset):
            service.ingest(event)
            assert service.verdicts_emitted == 0
        summary = service.finish()
        assert summary.n_verdicts > 0

    def test_settlement_fires_once_gap_clears_horizon(self):
        """An in-order arrival more than 2H past a stay settles it
        immediately (watermark has passed gap + horizon)."""
        gps = stationary_gps(0.0, 0.0, 0.0, 600.0)
        checkin = make_checkin("c0", t=300.0, x=0.0, y=0.0)
        dataset = make_dataset(
            [make_user("u0", gps=gps, checkins=[checkin])], [make_poi()]
        )
        service = ValidationService(dataset.pois, name=dataset.name)
        for event in replay_events(dataset):
            service.ingest(event)
        from repro.serve import gps_event

        service.ingest(gps_event("u0", 600.0 + 2 * HORIZON + 1.0, 5000.0, 0.0))
        assert service.verdicts_emitted > 0


class TestRematchIdentity:
    def _contention_dataset(self):
        """Two checkins claiming one visit; the tie loser rematches to a
        second visit in round 2.  A second, independent single-round
        stay sits one-horizon-plus away, so the streaming path must
        take the max round count over chunks, not the sum."""
        gps = (
            stationary_gps(0.0, 0.0, 0.0, 600.0)
            + stationary_gps(400.0, 0.0, 700.0, 1320.0)
            + stationary_gps(0.0, 0.0, 1320.0 + HORIZON + 60.0,
                             1920.0 + HORIZON + 60.0)
        )
        checkins = [
            make_checkin("c0", t=300.0, x=0.0, y=0.0),
            make_checkin("c1", t=300.0, x=50.0, y=0.0),
            make_checkin("c2", t=1620.0 + HORIZON + 60.0, x=0.0, y=0.0),
        ]
        return make_dataset(
            [make_user("u0", gps=gps, checkins=checkins)], [make_poi()]
        )

    @pytest.mark.parametrize("max_rounds", [1, 2, 10])
    def test_rematch_rounds_identical(self, max_rounds):
        config = ServeConfig(
            match=MatchConfig(rematch_losers=True, max_rematch_rounds=max_rounds)
        )
        dataset = self._contention_dataset()
        report, batch_ctx, service, summary, serve_ctx = both_paths(
            dataset, config
        )
        assert labels_of(service) == batch_labels_of(report)
        assert summary.summary() == report.summary()
        batch_counters = batch_ctx.metrics.snapshot()["counters"]
        serve_counters = serve_ctx.metrics.snapshot()["counters"]
        for name in (
            "matching.rounds_total",
            "matching.rematch_rounds",
            "matching.tie_losers_total",
            "matching.honest_total",
            "matching.extraneous_total",
        ):
            assert serve_counters.get(name) == batch_counters.get(name), name
        if max_rounds >= 2:
            # The contention really produced a second round.
            assert serve_counters["matching.rounds_total"] == 2

    def test_paper_mode_single_round(self):
        dataset = self._contention_dataset()
        report, batch_ctx, service, _, serve_ctx = both_paths(dataset)
        assert labels_of(service) == batch_labels_of(report)
        assert (
            serve_ctx.metrics.snapshot()["counters"]["matching.rounds_total"]
            == batch_ctx.metrics.snapshot()["counters"]["matching.rounds_total"]
        )


class TestLateness:
    def test_late_event_beyond_bound_rejected(self):
        from repro.serve import gps_event

        service = ValidationService([make_poi()], ServeConfig())
        from repro.serve import register_event

        service.ingest(register_event("u0"))
        service.ingest(gps_event("u0", 1000.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="late"):
            service.ingest(gps_event("u0", 900.0, 0.0, 0.0))

    def test_finalize_settles_tail_after_gap_under_large_lateness(self):
        """Regression: with a lateness bound so large the watermark
        never seals the gap before end of stream, finalize (force) must
        still settle everything *after* the last gap.  The force path
        once stopped the cutoff at the last gap boundary, silently
        dropping all tail verdicts and leaving events pending forever."""
        gap = 50_000.0
        gps = (
            stationary_gps(0.0, 0.0, 0.0, 600.0)
            + stationary_gps(0.0, 0.0, gap, gap + 600.0)
        )
        checkins = [
            make_checkin("c0", t=300.0, x=0.0, y=0.0),
            make_checkin("c1", t=gap + 300.0, x=0.0, y=0.0),
        ]
        dataset = make_dataset(
            [make_user("u0", gps=gps, checkins=checkins)], [make_poi()]
        )
        config = ServeConfig(allowed_lateness_s=100_000.0)
        report, _, service, summary, _ = both_paths(dataset, config)
        assert batch_labels_of(report) == {"c0": "honest", "c1": "honest"}
        assert labels_of(service) == batch_labels_of(report)
        assert summary.summary() == report.summary()
        # Two chunks (split at the gap), and nothing left pending.
        assert summary.n_chunks == 2
        for state in service._states.values():
            assert state.pending_count() == 0

    def test_out_of_order_within_bound_matches_batch(self):
        """A checkin arriving after later GPS (within the lateness
        bound) produces the same verdicts as the sorted batch trace."""
        gps = stationary_gps(0.0, 0.0, 0.0, 600.0)
        checkin = make_checkin("c0", t=300.0, x=0.0, y=0.0)
        dataset = make_dataset(
            [make_user("u0", gps=gps, checkins=[checkin])], [make_poi()]
        )
        batch_ctx = ObsContext()
        with activate(batch_ctx):
            report = validate(dataset)
        config = ServeConfig(allowed_lateness_s=600.0)
        service = ValidationService(dataset.pois, config, name=dataset.name)
        events = [e for e in replay_events(dataset)]
        # Deliver the checkin last: 300 s behind the final fix at 600 s.
        checkin_events = [e for e in events if e.kind == "checkin"]
        others = [e for e in events if e.kind != "checkin"]
        for event in others + checkin_events:
            service.ingest(event)
        summary = service.finish()
        assert labels_of(service) == batch_labels_of(report)
        assert summary.summary() == report.summary()


class TestSnapshotStore:
    def _state(self):
        engine = StreamEngine(ServeConfig(), build_index())
        state = engine.new_state("u0")
        from repro.serve import gps_event

        engine.ingest(state, gps_event("u0", 60.0, 1.0, 2.0))
        engine.ingest(state, gps_event("u0", 120.0, 1.0, 2.0))
        return state

    def test_user_state_round_trips(self, tmp_path):
        store = ServeStateStore(tmp_path)
        key = config_hash(ServeConfig())
        state = self._state()
        store.save_user(key, 1, state)
        loaded = store.load_user(key, 1, "u0")
        assert loaded is not None
        assert loaded.pending_gps == state.pending_gps
        assert loaded.max_seen_t == state.max_seen_t
        assert loaded.verdict_seq == state.verdict_seq

    def test_wrong_key_or_generation_reads_absent(self, tmp_path):
        store = ServeStateStore(tmp_path)
        key = config_hash(ServeConfig())
        store.save_user(key, 1, self._state())
        assert store.load_user("deadbeef", 1, "u0") is None
        assert store.load_user(key, 2, "u0") is None

    def test_torn_cursor_reads_absent(self, tmp_path):
        store = ServeStateStore(tmp_path)
        key = config_hash(ServeConfig())
        store.save_cursor(key, {"cursor": 10, "generation": 1, "users": []})
        cursor_file = tmp_path / "serve-cursor.pkl"
        cursor_file.write_bytes(cursor_file.read_bytes()[:7])
        assert store.load_cursor(key) is None

    def test_restore_with_missing_user_file_starts_fresh(self, tmp_path):
        """A cursor naming a user whose state file is gone must fall
        back to a fresh start, not a partial restore."""
        store = ServeStateStore(tmp_path)
        key = config_hash(ServeConfig())
        store.save_user(key, 1, self._state())
        store.save_cursor(
            key,
            {"cursor": 10, "generation": 1, "users": ["u0", "ghost"],
             "verdicts_total": 0, "name": "t", "n_pois": 0},
        )
        service = ValidationService([], ServeConfig(), state_store=store)
        assert service.restore() == 0


def build_index():
    from repro.core import build_poi_index

    return build_poi_index([make_poi()])
