"""Streaming replay must be byte-identical to batch validation.

The replay-parity tier: the golden fixture fed through the streaming
service event by event — at 1 and 4 ingest workers, with both
extraction kernels — must reproduce the batch ``validate()`` run
exactly: per-checkin verdicts, missing visits, summary text, semantic
counters, gauges, histograms, dataset fingerprint, and (through the
CLI) the manifest's fidelity scorecard.  The golden fixture's users
each span several settlement-horizon gaps, so these runs genuinely
settle chunks mid-stream rather than doing all the work at finish().
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.core import VisitConfig, validate
from repro.io import load_dataset
from repro.obs import ObsContext, RunManifest, activate, dataset_fingerprint
from repro.serve import ServeConfig, ValidationService
from repro.synth import replay_events

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"

#: Manifest metrics that describe results (not runtime/serving
#: mechanics); identical between the batch and streaming paths.
SEMANTIC_PREFIXES = ("extract.", "matching.", "classify.", "pipeline.")


def semantic_metrics(metrics):
    counters = {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if name.startswith(SEMANTIC_PREFIXES)
    }
    histograms = {
        name: value
        for name, value in metrics.get("histograms", {}).items()
        if name.startswith(SEMANTIC_PREFIXES)
    }
    return counters, metrics.get("gauges", {}), histograms


# Function-scoped on purpose: validate() annotates the dataset with
# extracted visits in place, and a second batch run over the same object
# would skip extraction (and its counters) entirely.
@pytest.fixture()
def golden():
    return load_dataset(GOLDEN_DIR)


def batch_run(dataset, kernel):
    ctx = ObsContext()
    with activate(ctx):
        report = validate(dataset, visit_config=VisitConfig(kernel=kernel))
    return report, ctx


def serve_run(dataset, kernel, workers, **service_kwargs):
    ctx = ObsContext()
    config = ServeConfig(visit=VisitConfig(kernel=kernel))
    service = ValidationService(
        dataset.pois,
        config,
        name=dataset.name,
        workers=workers,
        obs=ctx,
        **service_kwargs,
    )
    for event in replay_events(dataset):
        service.ingest(event)
    summary = service.finish()
    return service, summary, ctx


def batch_verdict_view(report):
    """Batch results in the verdict stream's vocabulary."""
    labels = {
        checkin_id: label.value
        for checkin_id, label in report.classification.labels.items()
    }
    missing = {
        user_id: [visit.visit_id for visit in matching.missing]
        for user_id, matching in report.matching.per_user.items()
    }
    return labels, missing


def serve_verdict_view(service):
    labels = {}
    missing = {}
    for user_id, verdicts in service.verdicts.items():
        missing[user_id] = []
        for verdict in verdicts:
            if verdict.kind == "checkin":
                labels[verdict.subject_id] = verdict.label
            else:
                missing[user_id].append(verdict.subject_id)
    return labels, missing


class TestReplayParity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("kernel", ["vectorized", "scalar"])
    def test_stream_matches_batch(self, golden, workers, kernel):
        report, batch_ctx = batch_run(golden, kernel)
        service, summary, serve_ctx = serve_run(golden, kernel, workers)

        assert summary.summary() == report.summary()
        assert serve_verdict_view(service) == batch_verdict_view(report)
        assert semantic_metrics(serve_ctx.metrics.snapshot()) == semantic_metrics(
            batch_ctx.metrics.snapshot()
        )
        # The golden study replays over a dataset validate() has
        # annotated with visits, so both fingerprints are
        # post-extraction and must agree exactly.
        assert summary.fingerprint == dataset_fingerprint(golden)

    def test_settlement_happens_mid_stream(self, golden):
        """The fixture must exercise incremental settlement: several
        chunks per user, and verdicts emitted before finish()."""
        ctx = ObsContext()
        service = ValidationService(
            golden.pois, name=golden.name, workers=1, obs=ctx
        )
        emitted_before_finish = 0
        for event in replay_events(golden):
            service.ingest(event)
        emitted_before_finish = service.verdicts_emitted
        summary = service.finish()
        assert emitted_before_finish > 0
        assert summary.n_chunks >= 2 * summary.n_users
        assert service.verdicts_emitted == summary.n_verdicts

    def test_verdict_sequences_are_deterministic(self, golden):
        """Per-user verdict streams are identical at any lane count."""
        baseline, _, _ = serve_run(golden, "auto", 1)
        for workers in (2, 4):
            service, _, _ = serve_run(golden, "auto", workers)
            assert {
                user: [v.as_dict() for v in verdicts]
                for user, verdicts in service.verdicts.items()
            } == {
                user: [v.as_dict() for v in verdicts]
                for user, verdicts in baseline.verdicts.items()
            }


def run_cli(tmp_path, capsys, tag, *argv):
    manifest_path = tmp_path / f"{tag}.manifest.json"
    assert main([*argv, "--manifest", str(manifest_path)]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if "manifest" not in line]
    return RunManifest.load(manifest_path), lines


class TestCliParity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_serve_cli_matches_validate_cli(self, tmp_path, capsys, workers):
        batch, batch_out = run_cli(
            tmp_path, capsys, "validate",
            "validate", "--data", str(GOLDEN_DIR),
        )
        serve, serve_out = run_cli(
            tmp_path, capsys, f"serve{workers}",
            "serve", "--data", str(GOLDEN_DIR), "--workers", str(workers),
        )
        assert serve_out == batch_out
        assert serve.dataset == batch.dataset  # incl. the content sha256
        assert serve.config_hash == batch.config_hash
        assert serve.scorecard == batch.scorecard
        assert serve.scorecard["status"] == "pass"
        sc, sg, sh = semantic_metrics(serve.metrics)
        bc, bg, bh = semantic_metrics(batch.metrics)
        assert (sc, sg, sh) == (bc, bg, bh)
        assert serve.extra["serve"]["workers"] == max(workers, 1)
        assert serve.extra["serve"]["chunks"] >= 2

    def test_event_stream_round_trip(self, tmp_path, capsys):
        """Dump the replayed stream, re-serve from the captured file:
        same manifest semantics."""
        events_path = tmp_path / "events.jsonl"
        direct, direct_out = run_cli(
            tmp_path, capsys, "direct",
            "serve", "--data", str(GOLDEN_DIR),
            "--dump-events", str(events_path),
        )
        replayed, replayed_out = run_cli(
            tmp_path, capsys, "replayed",
            "serve", "--data", str(GOLDEN_DIR),
            "--events", str(events_path),
        )
        assert [l for l in replayed_out if "events" not in l] == [
            l for l in direct_out if "events" not in l
        ]
        assert replayed.dataset == direct.dataset
        assert semantic_metrics(replayed.metrics) == semantic_metrics(direct.metrics)
