"""Property tests: streaming == batch over arbitrary interleavings.

Hypothesis generates small multi-stay, multi-checkin traces with event
gaps straddling the settlement horizon, then checks two invariants:

* any in-order interleaving of GPS and checkin events, streamed through
  the service, yields exactly the batch pipeline's visits (every visit
  surfaces as an honest match or a missing verdict, with batch ids) and
  verdicts;
* out-of-order delivery within the allowed lateness bound changes
  nothing: the verdict stream equals the in-order run's, byte for byte.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from helpers import make_checkin, make_dataset, make_poi, make_user, stationary_gps  # noqa: E402
from repro.core import validate  # noqa: E402
from repro.serve import ServeConfig, ValidationService  # noqa: E402
from repro.synth import replay_events  # noqa: E402

HORIZON = ServeConfig().settlement_horizon_s()

#: Inter-stay gaps: below, exactly at, just past, and far past the
#: settlement horizon — the cases where chunking decisions differ.
GAPS = st.sampled_from([120.0, 900.0, HORIZON, HORIZON + 1.0, 2 * HORIZON + 60.0])

#: Stay locations far enough apart that visits never merge.
SPOTS = st.sampled_from([(0.0, 0.0), (2000.0, 0.0), (0.0, 2000.0), (5000.0, 5000.0)])

STAYS = st.lists(
    st.tuples(GAPS, SPOTS, st.integers(min_value=6, max_value=15)),  # gap, spot, minutes
    min_size=1,
    max_size=3,
)

CHECKIN_OFFSETS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # minutes into the timeline
        SPOTS,
        st.integers(min_value=0, max_value=37),  # sub-minute offset, seconds
    ),
    min_size=0,
    max_size=4,
    unique_by=lambda c: (c[0], c[2]),
)


def build_dataset(stays, checkin_specs):
    gps = []
    t = 0.0
    for gap, (x, y), minutes in stays:
        t += gap
        gps.extend(stationary_gps(x, y, t, t + minutes * 60.0))
        t += minutes * 60.0
    checkins = [
        make_checkin(f"c{i:03d}", t=minute * 60.0 + offset, x=x, y=y)
        for i, (minute, (x, y), offset) in enumerate(checkin_specs)
    ]
    return make_dataset(
        [make_user("u0", gps=gps, checkins=checkins)], [make_poi()]
    )


def stream_run(dataset, events, config=None):
    service = ValidationService(
        dataset.pois, config or ServeConfig(), name=dataset.name
    )
    for event in events:
        service.ingest(event)
    summary = service.finish()
    return service, summary


def verdict_records(service):
    return {
        user: [v.as_dict() for v in verdicts]
        for user, verdicts in service.verdicts.items()
    }


@settings(max_examples=30, deadline=None)
@given(stays=STAYS, checkin_specs=CHECKIN_OFFSETS)
def test_stream_reproduces_batch_visits_and_verdicts(stays, checkin_specs):
    dataset = build_dataset(stays, checkin_specs)
    report = validate(dataset)
    service, summary = stream_run(dataset, replay_events(dataset))

    # Visits: every batch visit surfaces exactly once in the verdict
    # stream (as an honest match or a missing report) with batch ids.
    batch_visits = sorted(
        visit.visit_id for visit in dataset.users["u0"].require_visits()
    )
    streamed_visits = sorted(
        v.visit_id for v in service.verdicts.get("u0", []) if v.visit_id
    )
    assert streamed_visits == batch_visits

    # Verdicts: labels and headline text identical to batch.
    stream_labels = {
        v.subject_id: v.label
        for vs in service.verdicts.values()
        for v in vs
        if v.kind == "checkin"
    }
    assert stream_labels == {
        cid: label.value for cid, label in report.classification.labels.items()
    }
    assert summary.summary() == report.summary()


@settings(max_examples=30, deadline=None)
@given(
    stays=STAYS,
    checkin_specs=CHECKIN_OFFSETS,
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_out_of_order_within_lateness_is_invariant(stays, checkin_specs, seed):
    """Delivery order jittered within the lateness bound yields the
    exact same verdict stream as in-order delivery."""
    import random

    lateness = 240.0
    dataset = build_dataset(stays, checkin_specs)
    events = list(replay_events(dataset))
    registrations = [e for e in events if e.kind == "register"]
    trace = [e for e in events if e.kind != "register"]
    # Sorting by (t + jitter) with |jitter| <= lateness/2 keeps every
    # arrival within `lateness` of the running high-water mark.
    rng = random.Random(seed)
    jittered = sorted(
        trace, key=lambda e: (e.t + rng.uniform(-lateness / 2, lateness / 2), e.kind)
    )
    config = ServeConfig(allowed_lateness_s=lateness)

    in_order, in_summary = stream_run(dataset, registrations + trace, config)
    shuffled, out_summary = stream_run(dataset, registrations + jittered, config)
    assert verdict_records(shuffled) == verdict_records(in_order)
    assert out_summary.summary() == in_summary.summary()
