"""Pearson correlation."""

import numpy as np
import pytest

from repro.stats import pearson


def test_perfect_positive():
    assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)


def test_perfect_negative():
    assert pearson([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


def test_independent_near_zero(rng):
    x = rng.normal(size=5000)
    y = rng.normal(size=5000)
    assert abs(pearson(x, y)) < 0.05


def test_constant_series_returns_zero():
    assert pearson([1, 1, 1], [1, 2, 3]) == 0.0


def test_matches_numpy(rng):
    x = rng.normal(size=100)
    y = 0.4 * x + rng.normal(size=100)
    assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


def test_clamped_to_unit_interval():
    r = pearson([1e-9, 2e-9, 3e-9], [1e-9, 2e-9, 3e-9])
    assert -1.0 <= r <= 1.0


def test_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        pearson([1, 2], [1, 2, 3])


def test_rejects_single_observation():
    with pytest.raises(ValueError):
        pearson([1], [2])


def test_rejects_non_finite():
    with pytest.raises(ValueError):
        pearson([1.0, float("inf")], [1.0, 2.0])


def test_invariant_under_affine_transform(rng):
    x = rng.normal(size=200)
    y = rng.normal(size=200)
    base = pearson(x, y)
    assert pearson(3 * x + 7, -1 * y + 2) == pytest.approx(-base)
