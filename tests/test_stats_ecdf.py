"""ECDF, KS distance, binned PDFs, category PDF."""

import numpy as np
import pytest

from repro.stats import Ecdf, category_pdf, ks_distance, log_binned_pdf


class TestEcdf:
    def test_simple_evaluation(self):
        ecdf = Ecdf.from_sample([1, 2, 3, 4])
        assert ecdf.evaluate(0) == 0.0
        assert ecdf.evaluate(1) == 0.25
        assert ecdf.evaluate(2.5) == 0.5
        assert ecdf.evaluate(4) == 1.0
        assert ecdf.evaluate(100) == 1.0

    def test_right_continuity(self):
        ecdf = Ecdf.from_sample([1.0, 1.0, 2.0])
        assert ecdf.evaluate(1.0) == pytest.approx(2 / 3)

    def test_evaluate_many(self):
        ecdf = Ecdf.from_sample([1, 2, 3, 4])
        out = ecdf.evaluate_many([0, 2, 5])
        assert list(out) == [0.0, 0.5, 1.0]

    def test_quantile(self):
        ecdf = Ecdf.from_sample([10, 20, 30, 40])
        assert ecdf.quantile(0.25) == 10
        assert ecdf.quantile(0.5) == 20
        assert ecdf.quantile(1.0) == 40
        assert ecdf.quantile(0.0) == 10

    def test_median_even(self):
        assert Ecdf.from_sample([1, 2, 3, 4]).median() == 2

    def test_quantile_out_of_range(self):
        ecdf = Ecdf.from_sample([1])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample([1.0, float("nan")])

    def test_len(self):
        assert len(Ecdf.from_sample([5, 6, 7])) == 3

    def test_curve_subsamples(self):
        ecdf = Ecdf.from_sample(np.arange(1000.0))
        xs, fs = ecdf.curve(points=50)
        assert len(xs) == 50
        assert fs[-1] == 1.0
        assert np.all(np.diff(fs) >= 0)

    def test_curve_small_sample_uses_all(self):
        ecdf = Ecdf.from_sample([1, 2, 3])
        xs, _ = ecdf.curve(points=100)
        assert len(xs) == 3


class TestKsDistance:
    def test_identical(self):
        a = Ecdf.from_sample([1, 2, 3])
        assert ks_distance(a, a) == 0.0

    def test_disjoint_supports(self):
        a = Ecdf.from_sample([1, 2, 3])
        b = Ecdf.from_sample([10, 20, 30])
        assert ks_distance(a, b) == 1.0

    def test_symmetry(self, rng):
        a = Ecdf.from_sample(rng.normal(0, 1, 100))
        b = Ecdf.from_sample(rng.normal(0.5, 1, 80))
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_matches_scipy(self, rng):
        from scipy import stats as sps

        x = rng.normal(0, 1, 200)
        y = rng.normal(0.3, 1.2, 150)
        ours = ks_distance(Ecdf.from_sample(x), Ecdf.from_sample(y))
        theirs = sps.ks_2samp(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)


class TestLogBinnedPdf:
    def test_density_integrates_to_one(self, rng):
        sample = rng.pareto(1.5, 5000) + 1.0
        centers, density = log_binned_pdf(sample, bins=40)
        edges_ratio = centers[1] / centers[0]
        # Reconstruct bin widths from geometric centers.
        lo = centers / np.sqrt(edges_ratio)
        hi = centers * np.sqrt(edges_ratio)
        total = float(np.sum(density * (hi - lo)))
        assert total == pytest.approx(1.0, rel=0.05)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_binned_pdf([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            log_binned_pdf([])

    def test_degenerate_sample(self):
        centers, density = log_binned_pdf([2.0, 2.0, 2.0])
        assert len(centers) == 1

    def test_centers_are_increasing(self, rng):
        centers, _ = log_binned_pdf(rng.uniform(1, 100, 500), bins=20)
        assert np.all(np.diff(centers) > 0)


class TestCategoryPdf:
    def test_fractions(self):
        out = category_pdf(["a", "a", "b", "c"])
        assert out[0] == ("a", 0.5)
        assert dict(out)["b"] == 0.25

    def test_sorted_descending(self):
        out = category_pdf(["x"] * 5 + ["y"] * 3 + ["z"] * 2)
        assert [name for name, _ in out] == ["x", "y", "z"]

    def test_ties_sorted_by_name(self):
        out = category_pdf(["b", "a"])
        assert [name for name, _ in out] == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            category_pdf([])


class TestLogBinnedPdfBounds:
    def test_explicit_bounds_clip_range(self, rng):
        sample = rng.uniform(1, 1000, 2000)
        centers, _ = log_binned_pdf(sample, bins=10, lo=10.0, hi=100.0)
        assert centers[0] >= 10.0
        assert centers[-1] <= 100.0

    def test_bounds_must_be_ordered(self):
        # lo == hi degenerates into the single-spike case.
        centers, density = log_binned_pdf([5.0, 5.0], lo=5.0, hi=5.0)
        assert len(centers) == 1
