"""Shannon entropy helpers."""

import math

import pytest

from repro.stats import entropy_from_counts, entropy_of_labels, normalized_entropy


def test_uniform_two_categories_is_one_bit():
    assert entropy_from_counts([5, 5]) == pytest.approx(1.0)


def test_single_category_is_zero():
    assert entropy_from_counts([7]) == 0.0


def test_uniform_k_categories():
    assert entropy_from_counts([3, 3, 3, 3]) == pytest.approx(2.0)


def test_mapping_input():
    assert entropy_from_counts({"home": 5, "work": 5}) == pytest.approx(1.0)


def test_zero_counts_ignored():
    assert entropy_from_counts([4, 0, 4]) == pytest.approx(1.0)


def test_skewed_less_than_uniform():
    assert entropy_from_counts([9, 1]) < entropy_from_counts([5, 5])


def test_rejects_negative():
    with pytest.raises(ValueError):
        entropy_from_counts([-1, 2])


def test_rejects_empty():
    with pytest.raises(ValueError):
        entropy_from_counts([])


def test_rejects_all_zero():
    with pytest.raises(ValueError):
        entropy_from_counts([0, 0])


def test_entropy_of_labels():
    assert entropy_of_labels(["a", "b", "a", "b"]) == pytest.approx(1.0)


def test_entropy_of_labels_empty():
    with pytest.raises(ValueError):
        entropy_of_labels([])


def test_normalized_entropy_uniform_is_one():
    assert normalized_entropy([2, 2, 2]) == pytest.approx(1.0)


def test_normalized_entropy_single_is_zero():
    assert normalized_entropy([10]) == 0.0


def test_normalized_entropy_in_unit_interval():
    value = normalized_entropy([10, 3, 1])
    assert 0.0 < value < 1.0
