"""Pareto and power-law fitting."""

import math

import numpy as np
import pytest

from repro.stats import (
    ParetoFit,
    fit_movement_time_law,
    fit_pareto,
    fit_power_law,
)


class TestParetoFit:
    def test_recovers_parameters(self, rng):
        truth = ParetoFit(xm=100.0, alpha=1.7, n=0)
        sample = truth.sample(rng, 20000)
        fit = fit_pareto(sample)
        assert fit.xm == pytest.approx(100.0, rel=0.02)
        assert fit.alpha == pytest.approx(1.7, rel=0.05)

    def test_explicit_xm_truncates(self, rng):
        sample = np.concatenate([rng.uniform(1, 9, 50), 10.0 * (rng.pareto(2.0, 500) + 1)])
        fit = fit_pareto(sample, xm=10.0)
        assert fit.xm == 10.0
        assert fit.n == 500

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_pareto([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_pareto([1.0, -2.0])

    def test_rejects_xm_above_sample(self):
        with pytest.raises(ValueError):
            fit_pareto([1.0, 2.0], xm=5.0)

    def test_degenerate_sample_gets_huge_alpha(self):
        fit = fit_pareto([3.0, 3.0, 3.0])
        assert fit.alpha > 1e5

    def test_pdf_zero_below_xm(self):
        fit = ParetoFit(xm=10.0, alpha=2.0, n=1)
        assert fit.pdf(np.array([5.0]))[0] == 0.0
        assert fit.pdf(np.array([10.0]))[0] > 0.0

    def test_cdf_limits(self):
        fit = ParetoFit(xm=10.0, alpha=2.0, n=1)
        assert fit.cdf(np.array([10.0]))[0] == 0.0
        assert fit.cdf(np.array([1e9]))[0] == pytest.approx(1.0)

    def test_mean_finite_and_infinite(self):
        assert ParetoFit(xm=1.0, alpha=2.0, n=1).mean() == 2.0
        assert math.isinf(ParetoFit(xm=1.0, alpha=0.9, n=1).mean())

    def test_sample_above_xm(self, rng):
        fit = ParetoFit(xm=50.0, alpha=1.2, n=1)
        sample = fit.sample(rng, 1000)
        assert np.all(sample >= 50.0)

    def test_sample_matches_cdf(self, rng):
        fit = ParetoFit(xm=1.0, alpha=1.5, n=1)
        sample = fit.sample(rng, 50000)
        # Empirical median vs analytic median xm * 2^(1/alpha).
        assert np.median(sample) == pytest.approx(2 ** (1 / 1.5), rel=0.03)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ParetoFit(xm=0.0, alpha=1.0, n=1)
        with pytest.raises(ValueError):
            ParetoFit(xm=1.0, alpha=0.0, n=1)


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        xs = np.array([1.0, 10.0, 100.0, 1000.0])
        ys = 3.0 * xs**0.6
        fit = fit_power_law(xs, ys)
        assert fit.k == pytest.approx(3.0, rel=1e-9)
        assert fit.p == pytest.approx(0.6, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_recovers_noisy_law(self, rng):
        xs = rng.uniform(1, 1000, 2000)
        ys = 2.0 * xs**0.5 * np.exp(rng.normal(0, 0.1, 2000))
        fit = fit_power_law(xs, ys)
        assert fit.k == pytest.approx(2.0, rel=0.1)
        assert fit.p == pytest.approx(0.5, abs=0.03)

    def test_predict(self):
        fit = fit_power_law([1.0, 10.0], [2.0, 20.0])
        assert fit.predict(np.array([100.0]))[0] == pytest.approx(200.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0, 2.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, -1.0], [1.0, 2.0])


class TestMovementTimeLaw:
    def test_paper_parameterisation(self):
        # t = k * d^(1-rho): generate with k=5, rho=0.4.
        ds = np.array([100.0, 1000.0, 10000.0])
        ts = 5.0 * ds ** (1 - 0.4)
        k, rho = fit_movement_time_law(ds, ts)
        assert k == pytest.approx(5.0, rel=1e-9)
        assert rho == pytest.approx(0.4, abs=1e-9)
