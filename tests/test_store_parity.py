"""Disk-store runs must be byte-identical to in-memory runs.

The out-of-core path (``validate --store disk``) restructures *how* the
study flows through the pipeline — segment streaming, manifest-count
sharding, incremental merging — but must never change *what* comes out.
This suite pins that contract on the golden fixture across worker
counts and both extraction kernels, at the API level and end to end
through the CLI: stdout, summary text, per-user results, dataset
fingerprint, semantic metrics, and the fidelity scorecard all compare
equal, and checkpoint replay reproduces the same bytes again.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import VisitConfig, validate, validate_store
from repro.io import load_dataset, load_dataset_into_store
from repro.obs import ObsContext, RunManifest, activate

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"

#: One user per segment: the 3-user golden fixture spans 3 segments,
#: exercising the cross-segment merge with every user on a boundary.
SEGMENT_USERS = 1

#: Manifest counters that describe results (not runtime mechanics);
#: these must be identical between the memory and disk paths.
SEMANTIC_PREFIXES = ("extract.", "matching.", "classify.", "pipeline.")


def semantic_metrics(manifest: RunManifest):
    counters = {
        name: value
        for name, value in manifest.metrics.get("counters", {}).items()
        if name.startswith(SEMANTIC_PREFIXES)
    }
    # Gauges likewise, minus runtime mechanics (``store.*`` — e.g. the
    # in-flight window size, which memory runs don't have).
    gauges = {
        name: value
        for name, value in manifest.metrics.get("gauges", {}).items()
        if not name.startswith("store.")
    }
    return counters, gauges


def run_cli(tmp_path, tag, *extra):
    """One golden-fixture validate writing its manifest under ``tag``."""
    manifest_path = tmp_path / f"{tag}.manifest.json"
    argv = ["validate", "--data", str(GOLDEN_DIR),
            "--manifest", str(manifest_path), *extra]
    assert main(argv) == 0
    return RunManifest.load(manifest_path)


def result_lines(stdout: str):
    """stdout minus the one line naming the (run-specific) manifest path."""
    return [line for line in stdout.splitlines() if "manifest" not in line]


class TestCliParity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("kernel", ["vectorized", "scalar"])
    def test_disk_matches_memory(self, tmp_path, capsys, workers, kernel):
        base = ["--workers", str(workers), "--kernel", kernel]
        memory = run_cli(tmp_path, "memory", *base)
        memory_out = capsys.readouterr().out
        disk = run_cli(tmp_path, "disk", *base,
                       "--store", "disk", "--segment-users", str(SEGMENT_USERS))
        disk_out = capsys.readouterr().out

        assert result_lines(disk_out) == result_lines(memory_out)
        assert disk.dataset == memory.dataset  # incl. the content sha256
        assert disk.config_hash == memory.config_hash
        assert disk.scorecard == memory.scorecard
        assert disk.scorecard["status"] == "pass"
        assert semantic_metrics(disk) == semantic_metrics(memory)
        # The disk run declares itself and spans several segments.
        assert disk.extra["store"]["mode"] == "disk"
        assert disk.extra["store"]["count"] > 1
        assert disk.extra["extract.kernel"] == kernel

    def test_disk_store_counts_segments(self, tmp_path, capsys):
        manifest = run_cli(tmp_path, "d", "--store", "disk",
                           "--segment-users", "2")
        capsys.readouterr()
        expected = json.loads(
            (GOLDEN_DIR / "expected.json").read_text(encoding="utf-8")
        )
        n_users = expected["n_users"]
        assert manifest.counter("store.segments_total") == -(-n_users // 2)
        assert manifest.counter("matching.honest_total") == expected["venn"]["honest"]

    def test_prebuilt_store_dir_is_reusable(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        first = run_cli(tmp_path, "first", "--store", "disk",
                        "--segment-users", "2", "--store-dir", str(store_dir))
        capsys.readouterr()
        assert (store_dir / "store.json").exists()
        # Second run points --data straight at the store directory.
        manifest_path = tmp_path / "again.manifest.json"
        assert main(["validate", "--data", str(store_dir), "--store", "disk",
                     "--manifest", str(manifest_path)]) == 0
        capsys.readouterr()
        again = RunManifest.load(manifest_path)
        assert again.dataset == first.dataset
        assert semantic_metrics(again) == semantic_metrics(first)


class TestApiParity:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("parity") / "store"
        return load_dataset_into_store(GOLDEN_DIR, store_dir,
                                       segment_users=SEGMENT_USERS)

    @pytest.fixture(scope="class")
    def memory_report(self):
        return validate(load_dataset(GOLDEN_DIR))

    @pytest.mark.parametrize("kernel", ["vectorized", "scalar"])
    def test_full_report_parity(self, store, kernel):
        reference = validate(load_dataset(GOLDEN_DIR),
                             visit_config=VisitConfig(kernel=kernel))
        report = validate_store(store, visit_config=VisitConfig(kernel=kernel),
                                keep_results=True)
        assert report.summary() == reference.summary()
        assert report.type_counts() == reference.type_counts()
        assert list(report.matching.per_user) == list(reference.matching.per_user)
        assert report.matching.per_user == reference.matching.per_user
        assert report.classification.labels == reference.classification.labels

    @pytest.mark.parametrize("workers", [1, 4])
    def test_summary_mode_parity(self, store, memory_report, workers):
        summary = validate_store(store, workers=workers)
        assert summary.summary() == memory_report.summary()
        assert summary.n_users == len(memory_report.dataset.users)
        assert summary.n_segments == len(store.segments)
        assert summary.segments_reused == 0

    def test_fingerprint_matches_post_extraction_dataset(self, store, memory_report):
        from repro.obs.manifest import dataset_fingerprint

        summary = validate_store(store)
        # The in-memory CLI fingerprints the dataset *after* extraction
        # mutates visits in place; the store path must reproduce that.
        assert store.fingerprint(visit_counts=summary.visit_counts) == \
            dataset_fingerprint(memory_report.dataset)

    def test_checkpoint_replay_is_byte_identical(self, store, tmp_path):
        ckpt = tmp_path / "ckpt"
        cold = validate_store(store, checkpoints=ckpt)
        assert cold.segments_reused == 0
        warm = validate_store(store, checkpoints=ckpt)
        assert warm.segments_reused == len(store.segments)
        assert warm.summary() == cold.summary()
        assert warm.visit_counts == cold.visit_counts
        assert warm.type_counts == cold.type_counts

    def test_checkpoint_replay_restores_semantic_counters(self, store, tmp_path):
        ckpt = tmp_path / "ckpt"

        def counters():
            ctx = ObsContext()
            with activate(ctx):
                validate_store(store, checkpoints=ckpt)
            return {
                name: value
                for name, value in ctx.metrics.snapshot()["counters"].items()
                if name.startswith(SEMANTIC_PREFIXES)
            }

        assert counters() == counters()  # cold run, then full replay

    def test_config_change_invalidates_checkpoints(self, store, tmp_path):
        ckpt = tmp_path / "ckpt"
        validate_store(store, checkpoints=ckpt)
        rerun = validate_store(store, visit_config=VisitConfig(kernel="scalar"),
                               checkpoints=ckpt)
        assert rerun.segments_reused == 0


class TestPipelinedParity:
    """``--inflight-segments > 1`` must change wall-clock, nothing else.

    The pipelined scheduler overlaps segment loads and stage compute
    across threads; everything observable — summary, per-user results,
    semantic counters, manifest fingerprint, scorecard, and the
    checkpoint files' literal bytes — must be identical to the serial
    streaming loop at any worker count and any in-flight window.
    """

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("pipelined") / "store"
        return load_dataset_into_store(GOLDEN_DIR, store_dir,
                                       segment_users=SEGMENT_USERS)

    def test_cli_parallel_disk_parity_smoke(self, tmp_path, capsys):
        """The CI smoke: inflight 3 at 4 workers == serial, byte-for-byte."""
        base = ["--store", "disk", "--segment-users", str(SEGMENT_USERS)]
        serial = run_cli(tmp_path, "serial", *base,
                         "--inflight-segments", "1")
        serial_out = capsys.readouterr().out
        pipelined = run_cli(tmp_path, "pipelined", *base, "--workers", "4",
                            "--inflight-segments", "3")
        pipelined_out = capsys.readouterr().out

        assert result_lines(pipelined_out) == result_lines(serial_out)
        assert pipelined.dataset == serial.dataset
        assert pipelined.config_hash == serial.config_hash
        assert pipelined.scorecard == serial.scorecard
        assert semantic_metrics(pipelined) == semantic_metrics(serial)

    @pytest.mark.parametrize("workers,inflight", [(1, 3), (4, 2), (4, 8)])
    def test_summary_parity(self, store, workers, inflight):
        serial = validate_store(store, inflight_segments=1)
        pipelined = validate_store(store, workers=workers,
                                   inflight_segments=inflight)
        assert pipelined.summary() == serial.summary()
        assert pipelined.visit_counts == serial.visit_counts
        assert pipelined.type_counts == serial.type_counts

    def test_full_report_parity(self, store):
        reference = validate_store(store, keep_results=True)
        report = validate_store(store, workers=2, inflight_segments=3,
                                keep_results=True)
        assert report.summary() == reference.summary()
        assert list(report.matching.per_user) == list(reference.matching.per_user)
        assert report.matching.per_user == reference.matching.per_user
        assert report.classification.labels == reference.classification.labels

    @pytest.mark.parametrize("workers", [1, 4])
    def test_checkpoints_byte_identical(self, store, tmp_path, workers):
        serial_dir = tmp_path / f"serial-{workers}"
        pipe_dir = tmp_path / f"pipe-{workers}"
        validate_store(store, workers=workers, inflight_segments=1,
                       checkpoints=serial_dir)
        validate_store(store, workers=workers, inflight_segments=3,
                       checkpoints=pipe_dir)
        serial_files = sorted(p.name for p in serial_dir.glob("*.pkl"))
        pipe_files = sorted(p.name for p in pipe_dir.glob("*.pkl"))
        assert serial_files == pipe_files and serial_files
        for name in serial_files:
            assert (pipe_dir / name).read_bytes() == \
                (serial_dir / name).read_bytes(), name

    def test_pipelined_resumes_serial_checkpoints(self, store, tmp_path):
        """Checkpoint interop: either loop replays the other's files."""
        ckpt = tmp_path / "ckpt"
        cold = validate_store(store, checkpoints=ckpt)
        warm = validate_store(store, workers=2, inflight_segments=3,
                              checkpoints=ckpt)
        assert warm.segments_reused == len(store.segments)
        assert warm.summary() == cold.summary()

    def test_semantic_counters_identical(self, store):
        def counters(**kwargs):
            ctx = ObsContext()
            with activate(ctx):
                validate_store(store, **kwargs)
            return {
                name: value
                for name, value in ctx.metrics.snapshot()["counters"].items()
                if name.startswith(SEMANTIC_PREFIXES)
            }

        assert counters(workers=2, inflight_segments=3) == \
            counters(workers=2, inflight_segments=1)

    def test_pipeline_stats_surface_on_manifest(self, store):
        ctx = ObsContext()
        with activate(ctx):
            validate_store(store, workers=2, inflight_segments=3)
        snapshot = ctx.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["store.prefetch_overlap_total"] \
            + counters["store.prefetch_stalls_total"] == len(store.segments)
        assert snapshot["gauges"]["store.inflight_segments"] == 3.0

    def test_explicit_executor_rejects_pipelining(self, store):
        from repro.runtime import SerialExecutor
        from repro.runtime.errors import RuntimeConfigError

        with pytest.raises(RuntimeConfigError, match="in-flight"):
            validate_store(store, executor=SerialExecutor(),
                           inflight_segments=2)
