"""Segment store: round-trip fidelity, atomicity, and torn-write detection.

Three layers of guarantees under test:

* **Round trip** — arbitrary batches of traces (hypothesis-generated,
  including empty and single-point users) survive ``write_segment`` →
  ``SegmentReader`` with exact float64 equality, and the mmap-backed
  views pickle into the same three-buffer payload in-memory traces use.
* **Atomicity** — a successful write leaves no ``.tmp`` siblings, and a
  simulated crash (writer never finalizes) leaves no manifest, so the
  half-written store is never openable.
* **Torn writes** — any corruption (bad magic, truncated header or
  columns, bit flips, format bumps) is a loud ``SegmentFormatError`` or
  ``StoreFormatError``, never silently wrong data.
"""

from __future__ import annotations

import json
import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import GpsTrace
from repro.obs.manifest import dataset_fingerprint
from repro.store import (
    MAGIC,
    SegmentFormatError,
    SegmentReader,
    StoreFormatError,
    StudyStore,
    StudyStoreWriter,
    write_segment,
)
from helpers import make_checkin, make_user

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


@st.composite
def trace_batches(draw):
    """Ordered (user_id, GpsTrace) batches, empty traces included."""
    n_users = draw(st.integers(min_value=1, max_value=8))
    batch = []
    for idx in range(n_users):
        n = draw(st.integers(min_value=0, max_value=40))
        t = np.array(sorted(draw(st.lists(finite, min_size=n, max_size=n))))
        x = np.array(draw(st.lists(finite, min_size=n, max_size=n)))
        y = np.array(draw(st.lists(finite, min_size=n, max_size=n)))
        batch.append((f"u{idx:04d}", GpsTrace(t, x, y)))
    return batch


def small_batch():
    """A hand-built batch covering empty, single-point, and normal users."""
    return [
        ("alpha", GpsTrace([0.0, 60.0, 120.0], [1.0, 2.0, 3.0], [4.0, 5.0, 6.0])),
        ("empty", GpsTrace.empty()),
        ("solo", GpsTrace([7.0], [8.0], [9.0])),
    ]


class TestSegmentRoundTrip:
    @given(batch=trace_batches())
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_batches_round_trip_exactly(self, batch, tmp_path_factory):
        path = tmp_path_factory.mktemp("seg") / "seg.gps"
        info = write_segment(path, batch)
        with SegmentReader(path) as reader:
            assert reader.user_ids == tuple(u for u, _ in batch)
            assert reader.counts == tuple(len(t) for _, t in batch)
            assert reader.n_samples == sum(len(t) for _, t in batch)
            assert info.n_samples == reader.n_samples
            for user_id, trace in batch:
                loaded = reader.trace(user_id)
                assert np.array_equal(loaded.t, trace.t)
                assert np.array_equal(loaded.x, trace.x)
                assert np.array_equal(loaded.y, trace.y)
            assert [u for u, _ in reader.traces()] == [u for u, _ in batch]

    def test_empty_and_single_point_users(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        with SegmentReader(path) as reader:
            assert len(reader) == 3
            assert "empty" in reader and "nobody" not in reader
            assert len(reader.trace("empty")) == 0
            assert reader.trace("empty") == GpsTrace.empty()
            assert len(reader.trace("solo")) == 1
            assert reader.trace("solo").t[0] == 7.0

    def test_unknown_user_raises_key_error(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        with SegmentReader(path) as reader:
            with pytest.raises(KeyError, match="nobody"):
                reader.trace("nobody")

    def test_duplicate_user_ids_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate"):
            write_segment(
                tmp_path / "seg.gps",
                [("dup", GpsTrace.empty()), ("dup", GpsTrace.empty())],
            )

    def test_fingerprint_matches_write_report(self, tmp_path):
        path = tmp_path / "seg.gps"
        info = write_segment(path, small_batch())
        with SegmentReader(path) as reader:
            assert reader.fingerprint() == info.sha256
        assert info.nbytes == 3 * 8 * info.n_samples


class TestThreeBufferPickleCompat:
    """mmap-backed traces must pickle exactly like in-memory ones."""

    def test_mmap_trace_pickles_to_equal_trace(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        reader = SegmentReader(path)
        for user_id, original in small_batch():
            payload = pickle.dumps(reader.trace(user_id))
            restored = pickle.loads(payload)
            assert isinstance(restored, GpsTrace)
            assert restored == original
            # The payload owns its buffers: it must stay valid after the
            # segment file is gone (the shard-dispatch lifecycle).
            assert restored.t.flags.owndata or restored.t.base is not None

    def test_pickled_payload_survives_file_deletion(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        reader = SegmentReader(path)
        payload = pickle.dumps(reader.trace("alpha"))
        reader.close()
        path.unlink()
        restored = pickle.loads(payload)
        assert np.array_equal(restored.t, [0.0, 60.0, 120.0])

    def test_mmap_and_memory_pickles_are_byte_identical(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        with SegmentReader(path) as reader:
            for user_id, original in small_batch():
                assert pickle.dumps(reader.trace(user_id)) == pickle.dumps(original)

    def test_views_stay_valid_after_reader_close(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        reader = SegmentReader(path)
        trace = reader.trace("alpha")
        reader.close()
        assert np.array_equal(trace.x, [1.0, 2.0, 3.0])


class TestTornWriteDetection:
    def write_good(self, tmp_path):
        path = tmp_path / "seg.gps"
        write_segment(path, small_batch())
        return path

    def test_no_tmp_siblings_after_write(self, tmp_path):
        self.write_good(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["seg.gps"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(SegmentFormatError, match="cannot open"):
            SegmentReader(tmp_path / "absent.gps")

    def test_bad_magic(self, tmp_path):
        path = self.write_good(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(data)
        with pytest.raises(SegmentFormatError, match="bad magic"):
            SegmentReader(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "seg.gps"
        path.write_bytes(MAGIC + struct.pack("<Q", 1000) + b"{}")
        with pytest.raises(SegmentFormatError, match="truncated header"):
            SegmentReader(path)

    def test_invalid_header_json(self, tmp_path):
        garbage = b"not json!!"
        path = tmp_path / "seg.gps"
        path.write_bytes(MAGIC + struct.pack("<Q", len(garbage)) + garbage)
        with pytest.raises(SegmentFormatError, match="invalid header JSON"):
            SegmentReader(path)

    def test_unsupported_format_version(self, tmp_path):
        header = json.dumps({"format": 99, "n_samples": 0, "users": []}).encode()
        path = tmp_path / "seg.gps"
        path.write_bytes(MAGIC + struct.pack("<Q", len(header)) + header)
        with pytest.raises(SegmentFormatError, match="unsupported"):
            SegmentReader(path)

    def test_header_count_disagreement(self, tmp_path):
        header = json.dumps(
            {"format": 1, "n_samples": 5, "users": [["u0", 1]]}
        ).encode()
        path = tmp_path / "seg.gps"
        path.write_bytes(MAGIC + struct.pack("<Q", len(header)) + header)
        with pytest.raises(SegmentFormatError, match="disagrees"):
            SegmentReader(path)

    def test_truncated_columns(self, tmp_path):
        path = self.write_good(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(SegmentFormatError, match="bytes"):
            SegmentReader(path)


def build_store(tmp_path, n_users=5, segment_users=2):
    users = [
        make_user(
            f"u{i:02d}",
            gps=[],
            checkins=[make_checkin(f"c{i}-{j}", f"u{i:02d}") for j in range(i % 3)],
        )
        for i in range(n_users)
    ]
    for i, user in enumerate(users):
        n = i * 2  # 0, 2, 4, ... samples: empty first user by design
        user.gps = GpsTrace(
            np.arange(n) * 60.0, np.arange(n) + 0.5, np.arange(n) - 0.5
        )
    writer = StudyStoreWriter(tmp_path / "store", "drill", segment_users=segment_users)
    writer.write_pois({})
    writer.add_users(users)
    return writer.finalize(), users


class TestStudyStoreIntegrity:
    def test_round_trip_and_manifest_totals(self, tmp_path):
        store, users = build_store(tmp_path)
        assert [e.segment_id for e in store.segments] == [0, 1, 2]
        assert store.n_users == 5
        assert list(store.user_ids()) == [u.user_id for u in users]
        loaded = store.load_dataset()
        for user in users:
            assert loaded.users[user.user_id].gps == user.gps
            assert loaded.users[user.user_id].checkins == user.checkins
            assert loaded.users[user.user_id].profile == user.profile

    def test_no_tmp_files_and_verify_passes(self, tmp_path):
        store, _ = build_store(tmp_path)
        leftovers = list((tmp_path / "store").rglob("*.tmp"))
        assert leftovers == []
        store.verify()

    def test_fingerprint_matches_materialised_dataset(self, tmp_path):
        store, _ = build_store(tmp_path)
        assert store.fingerprint() == dataset_fingerprint(store.load_dataset())

    def test_bit_flip_in_segment_fails_verify(self, tmp_path):
        store, _ = build_store(tmp_path)
        victim = store.directory / store.segments[1].gps_file
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0x01  # flip one bit in the last y sample
        victim.write_bytes(data)
        with pytest.raises(StoreFormatError, match="fingerprint mismatch"):
            store.verify()

    def test_bit_flip_in_sidecar_fails_verify(self, tmp_path):
        store, _ = build_store(tmp_path)
        victim = store.directory / store.segments[0].users_file
        data = bytearray(victim.read_bytes())
        data[0] ^= 0x01
        victim.write_bytes(data)
        with pytest.raises(StoreFormatError, match="sidecar fingerprint"):
            store.verify()

    def test_crashed_writer_leaves_no_openable_store(self, tmp_path):
        writer = StudyStoreWriter(tmp_path / "crash", "crash", segment_users=1)
        writer.write_pois({})
        writer.add_user(make_user("u0"))  # spills a full segment...
        # ...but the writer "crashes" before finalize: no manifest.
        assert not StudyStore.is_store(tmp_path / "crash")
        with pytest.raises(StoreFormatError, match="no store.json"):
            StudyStore.open(tmp_path / "crash")

    def test_writer_rejects_duplicates_and_extracted_visits(self, tmp_path):
        from helpers import make_visit

        writer = StudyStoreWriter(tmp_path / "w", "w")
        writer.write_pois({})
        writer.add_user(make_user("u0"))
        with pytest.raises(ValueError, match="duplicate"):
            writer.add_user(make_user("u0"))
        with pytest.raises(ValueError, match="visits"):
            writer.add_user(make_user("u1", visits=[make_visit("v0", "u1")]))
        with pytest.raises(ValueError, match="write_pois"):
            StudyStoreWriter(tmp_path / "w2", "w2").finalize()
