"""Checkin behaviour generation."""

import math

import numpy as np
import pytest

from repro.geo import units
from repro.model import CheckinType
from repro.synth import (
    BehaviorConfig,
    Coverage,
    CoverageWindow,
    Itinerary,
    Leg,
    MobilityConfig,
    Stay,
    WorldConfig,
    generate_checkins,
    generate_world,
    sample_persona,
)
from repro.synth.persona import Persona


def make_persona(**overrides) -> Persona:
    base = dict(
        user_id="u0",
        badge_drive=0.5,
        mayor_drive=0.5,
        onthego_drive=0.5,
        social_drive=0.5,
        activity=1.0,
        honest_interesting_p=1.0,
        honest_boring_p=0.0,
        remote_sessions_per_day=0.0,
        remote_session_extra_mean=1.0,
        superfluous_burst_p=0.0,
        superfluous_extra_mean=1.0,
        driveby_leg_p=0.0,
        shortstop_checkin_p=0.0,
    )
    base.update(overrides)
    return Persona(**base)


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_pois=2000, size_m=10_000), np.random.default_rng(3))


@pytest.fixture
def day_coverage():
    return Coverage([CoverageWindow(0, units.days(1) - 1)])


def pick_interesting_poi(world):
    from repro.model import PoiCategory

    return next(
        p for p in world.pois.values() if p.category is PoiCategory.FOOD
    )


def single_stay_itinerary(poi, hours=2.0):
    return Itinerary([Stay(poi, 0, units.hours(hours))])


class TestHonest:
    def test_certain_honest_checkin(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        checkins = generate_checkins(
            single_stay_itinerary(poi), day_coverage, make_persona(), world, 1.0, 360.0, rng
        )
        honest = [c for c in checkins if c.intent is CheckinType.HONEST]
        assert len(honest) == 1
        assert honest[0].poi_id == poi.poi_id
        assert honest[0].t <= units.minutes(21)

    def test_no_checkin_when_probability_zero(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        persona = make_persona(honest_interesting_p=0.03)
        rng = np.random.default_rng(1)
        checkins = []
        # Even over many tries the rate stays near 3%.
        for _ in range(200):
            checkins.extend(
                generate_checkins(
                    single_stay_itinerary(poi), day_coverage, persona, world, 1.0, 360.0, rng
                )
            )
        assert len(checkins) < 25

    def test_short_stay_never_honest(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        itinerary = Itinerary([Stay(poi, 0, units.minutes(4))])
        checkins = generate_checkins(
            itinerary, day_coverage, make_persona(), world, 1.0, 360.0, rng
        )
        assert all(c.intent is not CheckinType.HONEST for c in checkins)

    def test_no_checkin_outside_coverage(self, world, rng):
        poi = pick_interesting_poi(world)
        cov = Coverage([CoverageWindow(units.hours(20), units.hours(21))])
        checkins = generate_checkins(
            single_stay_itinerary(poi), cov, make_persona(), world, 1.0, 360.0, rng
        )
        assert checkins == []


class TestSuperfluous:
    def test_burst_follows_honest(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        persona = make_persona(superfluous_burst_p=1.0, superfluous_extra_mean=2.0)
        checkins = generate_checkins(
            single_stay_itinerary(poi), day_coverage, persona, world, 1.0, 360.0, rng
        )
        kinds = [c.intent for c in checkins]
        assert CheckinType.HONEST in kinds
        assert CheckinType.SUPERFLUOUS in kinds

    def test_superfluous_near_the_stay(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        persona = make_persona(superfluous_burst_p=1.0, superfluous_extra_mean=3.0)
        checkins = generate_checkins(
            single_stay_itinerary(poi), day_coverage, persona, world, 1.0, 360.0, rng
        )
        for c in checkins:
            if c.intent is CheckinType.SUPERFLUOUS:
                assert math.hypot(c.x - poi.x, c.y - poi.y) <= 450.0

    def test_burst_is_bursty(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        persona = make_persona(superfluous_burst_p=1.0, superfluous_extra_mean=3.0)
        checkins = generate_checkins(
            single_stay_itinerary(poi), day_coverage, persona, world, 1.0, 360.0, rng
        )
        times = sorted(c.t for c in checkins)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps and max(gaps) <= units.minutes(4)


class TestRemote:
    def test_remote_far_from_user(self, world, day_coverage):
        poi = pick_interesting_poi(world)
        persona = make_persona(honest_interesting_p=0.0, remote_sessions_per_day=5.0)
        rng = np.random.default_rng(8)
        checkins = generate_checkins(
            Itinerary([Stay(poi, 0, units.days(1))]), day_coverage, persona, world,
            1.0, 360.0, rng,
        )
        remote = [c for c in checkins if c.intent is CheckinType.REMOTE]
        assert remote
        for c in remote:
            assert math.hypot(c.x - poi.x, c.y - poi.y) >= 700.0

    def test_remote_sessions_bursty(self, world, day_coverage):
        poi = pick_interesting_poi(world)
        persona = make_persona(
            honest_interesting_p=0.0,
            remote_sessions_per_day=3.0,
            remote_session_extra_mean=3.0,
        )
        rng = np.random.default_rng(9)
        checkins = generate_checkins(
            Itinerary([Stay(poi, 0, units.days(1))]), day_coverage, persona, world,
            1.0, 360.0, rng,
        )
        remote = sorted(c.t for c in checkins if c.intent is CheckinType.REMOTE)
        gaps = [b - a for a, b in zip(remote, remote[1:])]
        assert any(g <= 90.0 for g in gaps)


class TestDriveby:
    def test_driveby_on_fast_leg(self, world, day_coverage):
        persona = make_persona(honest_interesting_p=0.0, driveby_leg_p=1.0)
        # 10-minute drives at ~8 m/s, across several start rows so at
        # least one passes POI-dense terrain.
        found = []
        for row in range(10):
            leg = Leg(1000, 1000 * (row + 1), 5800, 1000 * (row + 1), 0, 600)
            rng = np.random.default_rng(10 + row)
            found.extend(
                generate_checkins(
                    Itinerary([leg]), day_coverage, persona, world, 1.0, 360.0, rng
                )
            )
        assert any(c.intent is CheckinType.DRIVEBY for c in found)

    def test_no_driveby_on_slow_leg(self, world, day_coverage, rng):
        persona = make_persona(honest_interesting_p=0.0, driveby_leg_p=1.0)
        leg = Leg(1000, 1000, 1300, 1000, 0, 600)  # 0.5 m/s walk
        checkins = generate_checkins(
            Itinerary([leg]), day_coverage, persona, world, 1.0, 360.0, rng
        )
        assert all(c.intent is not CheckinType.DRIVEBY for c in checkins)


class TestShortStop:
    def test_short_stop_yields_other(self, world, day_coverage):
        poi = pick_interesting_poi(world)
        persona = make_persona(honest_interesting_p=0.0, shortstop_checkin_p=1.0)
        itinerary = Itinerary([Stay(poi, 0, units.minutes(3))])
        rng = np.random.default_rng(11)
        checkins = generate_checkins(
            itinerary, day_coverage, persona, world, 1.0, 360.0, rng
        )
        assert len(checkins) == 1
        assert checkins[0].intent is CheckinType.OTHER


class TestInvariants:
    def test_ids_unique_and_time_sorted(self, world, day_coverage):
        poi = pick_interesting_poi(world)
        persona = make_persona(
            superfluous_burst_p=1.0, remote_sessions_per_day=3.0, shortstop_checkin_p=1.0
        )
        rng = np.random.default_rng(12)
        checkins = generate_checkins(
            Itinerary([Stay(poi, 0, units.days(1))]), day_coverage, persona, world,
            1.0, 360.0, rng,
        )
        ids = [c.checkin_id for c in checkins]
        assert len(ids) == len(set(ids))
        assert [c.t for c in checkins] == sorted(c.t for c in checkins)

    def test_every_checkin_has_intent(self, world, day_coverage):
        poi = pick_interesting_poi(world)
        persona = make_persona(superfluous_burst_p=1.0, remote_sessions_per_day=2.0)
        rng = np.random.default_rng(13)
        checkins = generate_checkins(
            Itinerary([Stay(poi, 0, units.days(1))]), day_coverage, persona, world,
            1.0, 360.0, rng,
        )
        assert all(c.intent is not None for c in checkins)

    def test_checkin_coordinates_are_poi_coordinates(self, world, day_coverage, rng):
        poi = pick_interesting_poi(world)
        checkins = generate_checkins(
            single_stay_itinerary(poi), day_coverage, make_persona(), world, 1.0, 360.0, rng
        )
        for c in checkins:
            ref = world.pois[c.poi_id]
            assert (c.x, c.y) == (ref.x, ref.y)
            assert c.category is ref.category
