"""Study configuration presets and scaling."""

import pytest

from repro.synth import StudyConfig, baseline_config, primary_config


def test_primary_matches_paper_population():
    config = primary_config()
    assert config.n_users == 244
    assert config.mean_study_days == pytest.approx(14.2)


def test_baseline_matches_paper_population():
    config = baseline_config()
    assert config.n_users == 47
    assert config.mean_study_days == pytest.approx(20.8)


def test_baseline_is_nearly_honest():
    config = baseline_config()
    assert config.behavior.remote_session_coeff < 1.0
    assert config.behavior.superfluous_burst_coeff < 0.5
    assert config.behavior.driveby_leg_coeff < 0.2


def test_scaled_shrinks_population():
    config = primary_config().scaled(0.1)
    assert config.n_users == 24
    # Behaviour is untouched.
    assert config.behavior == primary_config().behavior
    assert config.mean_study_days == pytest.approx(14.2)


def test_scaled_full_is_identity_population():
    assert primary_config().scaled(1.0).n_users == 244


def test_scaled_keeps_minimum_users():
    assert primary_config().scaled(0.001).n_users >= 2


def test_scaled_keeps_minimum_pois():
    assert primary_config().scaled(0.001).world.n_pois >= 200


def test_scaled_rejects_bad_factor():
    with pytest.raises(ValueError):
        primary_config().scaled(0.0)
    with pytest.raises(ValueError):
        primary_config().scaled(1.5)


def test_scaled_can_override_seed():
    assert primary_config().scaled(0.5, seed=7).seed == 7


def test_config_validation():
    with pytest.raises(ValueError):
        StudyConfig(name="x", n_users=0, mean_study_days=10, seed=1)
    with pytest.raises(ValueError):
        StudyConfig(name="x", n_users=10, mean_study_days=0, seed=1)


def test_visit_dwell_is_six_minutes():
    assert primary_config().visit_dwell_s == 360.0
