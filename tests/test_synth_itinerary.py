"""Itinerary construction and queries."""

import numpy as np
import pytest

from repro.geo import units
from repro.synth import (
    Itinerary,
    ItineraryBuilder,
    Leg,
    MobilityConfig,
    Stay,
    WorldConfig,
    generate_world,
    make_home_poi,
    pick_work_poi,
)
from helpers import make_poi


@pytest.fixture(scope="module")
def built():
    rng = np.random.default_rng(21)
    world = generate_world(WorldConfig(n_pois=1200), rng)
    home = make_home_poi("u0", world, rng)
    work = pick_work_poi(world, rng)
    builder = ItineraryBuilder(world, home, work, MobilityConfig())
    itinerary = builder.build(7, rng)
    return itinerary, home, work


class TestSegments:
    def test_stay_duration(self):
        stay = Stay(make_poi(), 0.0, 600.0)
        assert stay.duration == 600.0
        assert stay.speed == 0.0
        assert stay.position_at(300.0) == (0.0, 0.0)

    def test_stay_rejects_reversed(self):
        with pytest.raises(ValueError):
            Stay(make_poi(), 10.0, 0.0)

    def test_leg_interpolation(self):
        leg = Leg(0, 0, 100, 0, 0, 100)
        assert leg.position_at(50) == (50.0, 0.0)
        assert leg.position_at(-10) == (0.0, 0.0)  # clamped
        assert leg.position_at(1000) == (100.0, 0.0)
        assert leg.speed == pytest.approx(1.0)
        assert leg.distance == pytest.approx(100.0)

    def test_leg_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            Leg(0, 0, 1, 1, 5.0, 5.0)


class TestItineraryContainer:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Itinerary([])

    def test_rejects_gap(self):
        a = Stay(make_poi(), 0, 100)
        b = Stay(make_poi(), 200, 300)
        with pytest.raises(ValueError, match="gap"):
            Itinerary([a, b])

    def test_segment_at_boundaries(self):
        a = Stay(make_poi("p0"), 0, 100)
        b = Leg(0, 0, 10, 0, 100, 200)
        itinerary = Itinerary([a, b])
        assert itinerary.segment_at(0) is a
        assert itinerary.segment_at(150) is b
        assert itinerary.segment_at(200) is b

    def test_segment_at_out_of_range(self):
        itinerary = Itinerary([Stay(make_poi(), 0, 100)])
        with pytest.raises(ValueError):
            itinerary.segment_at(101)


class TestBuiltItinerary:
    def test_covers_study_window(self, built):
        itinerary, _, _ = built
        assert itinerary.t_start == 0.0
        assert itinerary.t_end >= units.days(7)

    def test_contiguous(self, built):
        itinerary, _, _ = built
        for a, b in zip(itinerary.segments, itinerary.segments[1:]):
            assert b.t_start == pytest.approx(a.t_end)

    def test_positions_continuous(self, built):
        """Consecutive segments join (nearly) at the same position."""
        itinerary, _, _ = built
        for a, b in zip(itinerary.segments, itinerary.segments[1:]):
            ax, ay = a.position_at(a.t_end)
            bx, by = b.position_at(b.t_start)
            assert abs(ax - bx) < 2.0
            assert abs(ay - by) < 2.0

    def test_starts_and_ends_home(self, built):
        itinerary, home, _ = built
        stays = itinerary.stays()
        assert stays[0].poi.poi_id == home.poi_id
        assert stays[-1].poi.poi_id == home.poi_id

    def test_visits_work_on_weekdays(self, built):
        itinerary, _, work = built
        work_stays = [s for s in itinerary.stays() if s.poi.poi_id == work.poi_id]
        # 5 weekdays in 7 days, two work blocks per attended day.
        assert len(work_stays) >= 4

    def test_has_short_and_long_stays(self, built):
        itinerary, _, _ = built
        durations = [s.duration for s in itinerary.stays()]
        assert min(durations) < units.minutes(6) or True  # short stops optional
        assert max(durations) > units.hours(3)

    def test_speeds_physical(self, built):
        itinerary, _, _ = built
        for leg in itinerary.legs():
            assert leg.speed <= 20.0

    def test_rejects_nonpositive_days(self, built):
        _, home, work = built
        rng = np.random.default_rng(0)
        world = generate_world(WorldConfig(n_pois=300), rng)
        builder = ItineraryBuilder(world, home, work, MobilityConfig())
        with pytest.raises(ValueError):
            builder.build(0, rng)

    def test_deterministic(self):
        rng1 = np.random.default_rng(33)
        world = generate_world(WorldConfig(n_pois=600), rng1)
        home = make_home_poi("u0", world, rng1)
        work = pick_work_poi(world, rng1)

        def build(seed):
            builder = ItineraryBuilder(world, home, work, MobilityConfig())
            return builder.build(3, np.random.default_rng(seed))

        a, b = build(99), build(99)
        assert len(a.segments) == len(b.segments)
        assert a.t_end == b.t_end


class TestHomebody:
    def test_homebody_day_is_hub_and_spoke(self):
        rng = np.random.default_rng(44)
        world = generate_world(WorldConfig(n_pois=800), rng)
        home = make_home_poi("u0", world, rng)
        work = pick_work_poi(world, rng)
        builder = ItineraryBuilder(
            world, home, work, MobilityConfig(), employed=False
        )
        itinerary = builder.build(7, rng)
        stays = itinerary.stays()
        home_stays = sum(1 for s in stays if s.poi.poi_id == home.poi_id)
        work_stays = sum(1 for s in stays if s.poi.poi_id == work.poi_id)
        # Homebodies return home a lot and (on weekdays) never commute.
        assert home_stays > len(stays) * 0.3
        assert work_stays == 0

    def test_employed_default(self):
        rng = np.random.default_rng(45)
        world = generate_world(WorldConfig(n_pois=800), rng)
        home = make_home_poi("u0", world, rng)
        work = pick_work_poi(world, rng)
        builder = ItineraryBuilder(world, home, work, MobilityConfig())
        assert builder.employed
