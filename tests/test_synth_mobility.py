"""Coverage windows, GPS sampling and ground-truth visits."""

import numpy as np
import pytest

from repro.geo import units
from repro.synth import (
    Coverage,
    CoverageWindow,
    Itinerary,
    MobilityConfig,
    Stay,
    build_coverage,
    ground_truth_visits,
    sample_gps,
)
from helpers import make_poi


class TestCoverageWindow:
    def test_overlap(self):
        window = CoverageWindow(100, 200)
        assert window.overlap(150, 300) == (150, 200)
        assert window.overlap(0, 120) == (100, 120)
        assert window.overlap(250, 300) is None

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CoverageWindow(10, 10)


class TestCoverage:
    def test_contains(self):
        cov = Coverage([CoverageWindow(0, 100), CoverageWindow(200, 300)])
        assert cov.contains(50)
        assert cov.contains(0)
        assert cov.contains(100)
        assert not cov.contains(150)
        assert not cov.contains(-1)

    def test_rejects_overlapping_windows(self):
        with pytest.raises(ValueError):
            Coverage([CoverageWindow(0, 100), CoverageWindow(50, 200)])

    def test_total_seconds(self):
        cov = Coverage([CoverageWindow(0, 100), CoverageWindow(200, 250)])
        assert cov.total_seconds() == 150

    def test_random_time_lands_inside(self, rng):
        cov = Coverage([CoverageWindow(0, 100), CoverageWindow(500, 600)])
        for _ in range(50):
            assert cov.contains(cov.random_time(rng))

    def test_random_time_empty_raises(self, rng):
        with pytest.raises(ValueError):
            Coverage([]).random_time(rng)


class TestBuildCoverage:
    def test_one_window_per_day(self, rng):
        cov = build_coverage(5, MobilityConfig(), rng)
        assert len(cov) == 5

    def test_windows_inside_their_day(self, rng):
        cov = build_coverage(10, MobilityConfig(), rng)
        for day, window in enumerate(cov):
            assert units.days(day) <= window.t_start
            assert window.t_end <= units.days(day + 1)

    def test_window_lengths_plausible(self, rng):
        cov = build_coverage(30, MobilityConfig(), rng)
        lengths = [w.t_end - w.t_start for w in cov]
        assert units.hours(4) <= min(lengths)
        assert np.mean(lengths) == pytest.approx(units.hours(13.5), rel=0.15)


@pytest.fixture
def simple_itinerary():
    home = make_poi("home", 0, 0)
    shop = make_poi("shop", 1000, 0)
    from repro.synth import Leg

    segments = [
        Stay(home, 0, units.hours(9)),
        Leg(0, 0, 1000, 0, units.hours(9), units.hours(9) + 600),
        Stay(shop, units.hours(9) + 600, units.hours(10)),
        Leg(1000, 0, 0, 0, units.hours(10), units.hours(10) + 600),
        Stay(home, units.hours(10) + 600, units.days(1)),
    ]
    return Itinerary(segments)


class TestSampleGps:
    def test_samples_only_in_coverage(self, simple_itinerary, rng):
        cov = Coverage([CoverageWindow(units.hours(8), units.hours(11))])
        points = sample_gps(simple_itinerary, cov, MobilityConfig(), rng)
        assert points
        for p in points:
            assert units.hours(8) <= p.t <= units.hours(11)

    def test_per_minute_cadence(self, simple_itinerary, rng):
        cov = Coverage([CoverageWindow(units.hours(8), units.hours(9))])
        points = sample_gps(simple_itinerary, cov, MobilityConfig(), rng)
        assert len(points) == 60

    def test_noise_applied(self, simple_itinerary, rng):
        cov = Coverage([CoverageWindow(0, units.hours(1))])
        points = sample_gps(simple_itinerary, cov, MobilityConfig(), rng)
        # Stationary at (0,0) but noisy: not all identical, all within ~6 sigma.
        xs = [p.x for p in points]
        assert len(set(xs)) > 1
        assert max(abs(x) for x in xs) < 6 * MobilityConfig().gps_noise_m

    def test_tracks_movement(self, simple_itinerary, rng):
        cov = Coverage([CoverageWindow(units.hours(9), units.hours(9) + 600)])
        points = sample_gps(simple_itinerary, cov, MobilityConfig(), rng)
        assert points[-1].x > points[0].x + 500


class TestGroundTruthVisits:
    def test_clipped_to_coverage(self, simple_itinerary):
        cov = Coverage([CoverageWindow(units.hours(8), units.hours(11))])
        visits = ground_truth_visits(simple_itinerary, cov, "u0", units.minutes(6))
        # Home (8:00-9:00), shop (9:10-10:00), home again (10:10-11:00).
        assert len(visits) == 3
        assert visits[0].t_start == units.hours(8)
        assert visits[0].poi_id == "home"
        assert visits[1].poi_id == "shop"

    def test_short_overlap_dropped(self, simple_itinerary):
        # Only 3 minutes of the shop stay covered: below the dwell rule.
        cov = Coverage([CoverageWindow(units.hours(9) + 600, units.hours(9) + 780)])
        visits = ground_truth_visits(simple_itinerary, cov, "u0", units.minutes(6))
        assert visits == []

    def test_visit_ids_unique(self, simple_itinerary):
        cov = Coverage([CoverageWindow(0, units.days(1) - 1)])
        visits = ground_truth_visits(simple_itinerary, cov, "u0", units.minutes(6))
        ids = [v.visit_id for v in visits]
        assert len(ids) == len(set(ids))
