"""Persona sampling and profile feature generation."""

import numpy as np
import pytest

from repro.stats import pearson
from repro.synth import BehaviorConfig, build_profile, sample_persona
from repro.synth.config import baseline_config, primary_config


def sample_many(behavior, n=400, seed=11):
    rng = np.random.default_rng(seed)
    return [sample_persona(f"u{i}", behavior, rng) for i in range(n)]


def test_drives_in_unit_interval():
    for persona in sample_many(BehaviorConfig(), n=100):
        for value in (
            persona.badge_drive,
            persona.mayor_drive,
            persona.onthego_drive,
            persona.social_drive,
        ):
            assert 0.0 <= value <= 1.0


def test_probabilities_valid():
    for persona in sample_many(BehaviorConfig(), n=100):
        assert 0.0 < persona.honest_interesting_p <= 0.9
        assert 0.0 <= persona.superfluous_burst_p <= 0.9
        assert 0.0 <= persona.driveby_leg_p <= 0.85
        assert persona.remote_sessions_per_day >= 0.0


def test_activity_bounded():
    for persona in sample_many(BehaviorConfig(), n=100):
        assert 0.30 <= persona.activity <= 2.8


def test_remote_rate_grows_with_badge_drive():
    personas = sample_many(BehaviorConfig())
    r = pearson(
        [p.badge_drive for p in personas],
        [p.remote_sessions_per_day for p in personas],
    )
    assert r > 0.8


def test_burst_p_grows_with_mayor_drive():
    personas = sample_many(BehaviorConfig())
    r = pearson(
        [p.mayor_drive for p in personas], [p.superfluous_burst_p for p in personas]
    )
    assert r > 0.8


def test_baseline_personas_barely_cheat():
    personas = sample_many(baseline_config().behavior)
    assert np.mean([p.remote_sessions_per_day for p in personas]) < 0.05
    assert np.mean([p.superfluous_burst_p for p in personas]) < 0.05


def test_profile_counts_nonnegative(rng):
    for persona in sample_many(BehaviorConfig(), n=50):
        profile = build_profile(persona, 14.0, rng)
        assert profile.friends >= 0
        assert profile.badges >= 0
        assert profile.mayorships >= 0
        assert profile.study_days == 14.0


def test_badges_track_badge_drive(rng):
    personas = sample_many(BehaviorConfig(), n=600)
    profiles = [build_profile(p, 14.0, rng) for p in personas]
    r = pearson([p.badge_drive for p in personas], [pr.badges for pr in profiles])
    assert r > 0.5


def test_mayorships_track_mayor_drive(rng):
    personas = sample_many(BehaviorConfig(), n=600)
    profiles = [build_profile(p, 14.0, rng) for p in personas]
    r = pearson([p.mayor_drive for p in personas], [pr.mayorships for pr in profiles])
    assert r > 0.4


def test_deterministic_given_rng():
    a = sample_persona("u0", BehaviorConfig(), np.random.default_rng(5))
    b = sample_persona("u0", BehaviorConfig(), np.random.default_rng(5))
    assert a == b


def test_primary_population_has_heavy_reward_tail():
    personas = sample_many(primary_config().behavior, n=600)
    rates = [p.remote_sessions_per_day for p in personas]
    assert np.quantile(rates, 0.9) > 2.5 * np.median(rates)
