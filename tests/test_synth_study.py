"""Full study generation."""

import numpy as np
import pytest

from repro.model import CheckinType, PoiCategory
from repro.synth import generate_dataset, primary_config


@pytest.fixture(scope="module")
def small():
    return generate_dataset(primary_config(seed=77).scaled(0.04))


def test_user_count(small):
    assert len(small) == 10


def test_every_user_has_home_poi(small):
    for user_id in small.users:
        home = small.pois[f"home-{user_id}"]
        assert home.category is PoiCategory.RESIDENCE


def test_gps_traces_nonempty_and_sorted(small):
    for data in small.users.values():
        assert len(data.gps) > 500
        times = [p.t for p in data.gps]
        assert times == sorted(times)


def test_checkins_reference_known_pois(small):
    for checkin in small.all_checkins:
        assert checkin.poi_id in small.pois


def test_checkins_have_ground_truth_intents(small):
    checkins = small.all_checkins
    assert checkins
    assert all(c.intent is not None for c in checkins)
    kinds = {c.intent for c in checkins}
    assert CheckinType.HONEST in kinds
    assert CheckinType.REMOTE in kinds


def test_visits_not_extracted_by_default(small):
    assert not small.has_visits()


def test_ground_truth_visits_option():
    ds = generate_dataset(
        primary_config(seed=78).scaled(0.02), with_ground_truth_visits=True
    )
    assert ds.has_visits()
    for visit in ds.all_visits:
        assert visit.duration >= 360.0
        assert visit.poi_id in ds.pois


def test_study_days_positive_and_plausible(small):
    days = [d.profile.study_days for d in small.users.values()]
    assert all(4 <= d <= 29 for d in days)


def test_deterministic_generation():
    a = generate_dataset(primary_config(seed=5).scaled(0.02))
    b = generate_dataset(primary_config(seed=5).scaled(0.02))
    assert a.stats() == b.stats()
    ua = next(iter(a.users.values()))
    ub = next(iter(b.users.values()))
    assert ua.checkins == ub.checkins
    assert ua.gps == ub.gps


def test_different_seeds_differ():
    a = generate_dataset(primary_config(seed=5).scaled(0.02))
    b = generate_dataset(primary_config(seed=6).scaled(0.02))
    assert a.stats() != b.stats()


def test_dataset_name(small):
    assert small.name == "Primary"
