"""Full study generation."""

import numpy as np
import pytest

from repro.model import CheckinType, PoiCategory
from repro.store import StudyStore
from repro.synth import generate_dataset, generate_study_store, primary_config


@pytest.fixture(scope="module")
def small():
    return generate_dataset(primary_config(seed=77).scaled(0.04))


def test_user_count(small):
    assert len(small) == 10


def test_every_user_has_home_poi(small):
    for user_id in small.users:
        home = small.pois[f"home-{user_id}"]
        assert home.category is PoiCategory.RESIDENCE


def test_gps_traces_nonempty_and_sorted(small):
    for data in small.users.values():
        assert len(data.gps) > 500
        times = [p.t for p in data.gps]
        assert times == sorted(times)


def test_checkins_reference_known_pois(small):
    for checkin in small.all_checkins:
        assert checkin.poi_id in small.pois


def test_checkins_have_ground_truth_intents(small):
    checkins = small.all_checkins
    assert checkins
    assert all(c.intent is not None for c in checkins)
    kinds = {c.intent for c in checkins}
    assert CheckinType.HONEST in kinds
    assert CheckinType.REMOTE in kinds


def test_visits_not_extracted_by_default(small):
    assert not small.has_visits()


def test_ground_truth_visits_option():
    ds = generate_dataset(
        primary_config(seed=78).scaled(0.02), with_ground_truth_visits=True
    )
    assert ds.has_visits()
    for visit in ds.all_visits:
        assert visit.duration >= 360.0
        assert visit.poi_id in ds.pois


def test_study_days_positive_and_plausible(small):
    days = [d.profile.study_days for d in small.users.values()]
    assert all(4 <= d <= 29 for d in days)


def test_deterministic_generation():
    a = generate_dataset(primary_config(seed=5).scaled(0.02))
    b = generate_dataset(primary_config(seed=5).scaled(0.02))
    assert a.stats() == b.stats()
    ua = next(iter(a.users.values()))
    ub = next(iter(b.users.values()))
    assert ua.checkins == ub.checkins
    assert ua.gps == ub.gps


def test_different_seeds_differ():
    a = generate_dataset(primary_config(seed=5).scaled(0.02))
    b = generate_dataset(primary_config(seed=6).scaled(0.02))
    assert a.stats() != b.stats()


def test_dataset_name(small):
    assert small.name == "Primary"


class TestParallelStoreGeneration:
    """``generate_study_store(workers=...)``: chunks fan out to worker
    processes but land in the writer in plan order, so the store is
    bit-for-bit the one the serial path writes."""

    CONFIG_ARGS = dict(seed=77, scale=0.04, segment_users=3)

    def build(self, directory, **kwargs):
        config = primary_config(seed=self.CONFIG_ARGS["seed"])
        return generate_study_store(
            config.scaled(self.CONFIG_ARGS["scale"]), directory,
            segment_users=self.CONFIG_ARGS["segment_users"], **kwargs,
        )

    def test_parallel_fingerprint_matches_serial(self, tmp_path):
        serial = self.build(tmp_path / "serial")
        parallel = self.build(
            tmp_path / "parallel", workers=2, inflight_segments=3
        )
        assert parallel.fingerprint() == serial.fingerprint()
        assert parallel.n_users == serial.n_users
        assert len(parallel.segments) == len(serial.segments)

    def test_single_chunk_study_still_parallel_safe(self, tmp_path):
        config = primary_config(seed=77).scaled(0.04)
        serial = generate_study_store(
            config, tmp_path / "serial", segment_users=64
        )
        parallel = generate_study_store(
            config, tmp_path / "parallel", segment_users=64, workers=2
        )
        assert len(serial.segments) == 1
        assert parallel.fingerprint() == serial.fingerprint()

    def test_parallel_store_reopens_and_verifies(self, tmp_path):
        self.build(tmp_path / "store", workers=2, inflight_segments=2)
        store = StudyStore.open(tmp_path / "store")
        store.verify()
        assert store.n_users == 10

    def test_invalid_inflight_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="inflight"):
            self.build(tmp_path / "bad", workers=2, inflight_segments=0)
