"""Synthetic POI universe."""

import math

import numpy as np
import pytest

from repro.model import PoiCategory
from repro.synth import (
    CATEGORY_WEIGHTS,
    World,
    WorldConfig,
    generate_world,
    make_home_poi,
    pick_work_poi,
)


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_pois=1500), np.random.default_rng(7))


def test_poi_count(world):
    assert len(world) == 1500


def test_pois_inside_arena(world):
    for poi in world.pois.values():
        assert 0 <= poi.x <= world.size_m
        assert 0 <= poi.y <= world.size_m


def test_all_categories_present(world):
    present = {poi.category for poi in world.pois.values()}
    assert present == set(PoiCategory)


def test_category_frequencies_follow_weights(world):
    counts = {}
    for poi in world.pois.values():
        counts[poi.category] = counts.get(poi.category, 0) + 1
    for category, weight in CATEGORY_WEIGHTS.items():
        observed = counts[category] / len(world)
        assert observed == pytest.approx(weight, abs=0.04)


def test_pois_within(world):
    poi = next(iter(world.pois.values()))
    found = world.pois_within(poi.x, poi.y, 500)
    assert any(p.poi_id == poi.poi_id for _, p in found)
    for dist, p in found:
        assert dist <= 500
        assert math.hypot(p.x - poi.x, p.y - poi.y) == pytest.approx(dist)


def test_nearest_poi(world):
    poi = next(iter(world.pois.values()))
    hit = world.nearest_poi(poi.x + 1, poi.y)
    assert hit is not None
    assert hit[0] <= 10.0


def test_random_poi_category(world, rng):
    poi = world.random_poi(rng, PoiCategory.FOOD)
    assert poi.category is PoiCategory.FOOD


def test_sample_poi_near_targets_annulus(world, rng):
    poi = next(iter(world.pois.values()))
    for _ in range(10):
        pick = world.sample_poi_near(poi.x, poi.y, 2000.0, rng)
        assert pick is not None
        d = math.hypot(pick.x - poi.x, pick.y - poi.y)
        # Either in the annulus or the fallback kicked in (rare with 1500 POIs).
        assert d <= world.size_m * math.sqrt(2)


def test_sample_poi_near_respects_category(world, rng):
    poi = next(iter(world.pois.values()))
    pick = world.sample_poi_near(
        poi.x, poi.y, 1000.0, rng, categories=[PoiCategory.NIGHTLIFE]
    )
    assert pick is not None
    assert pick.category is PoiCategory.NIGHTLIFE


def test_sample_poi_near_excludes(world, rng):
    poi = next(iter(world.pois.values()))
    for _ in range(20):
        pick = world.sample_poi_near(poi.x, poi.y, 100.0, rng, exclude=poi.poi_id)
        assert pick is None or pick.poi_id != poi.poi_id


def test_sample_poi_near_empty_category_returns_none(rng):
    lonely = generate_world(WorldConfig(n_pois=1), np.random.default_rng(1))
    only = next(iter(lonely.pois.values()))
    missing = next(c for c in PoiCategory if c is not only.category)
    assert lonely.sample_poi_near(0, 0, 100.0, rng, categories=[missing]) is None


def test_make_home_poi(world, rng):
    home = make_home_poi("u42", world, rng)
    assert home.category is PoiCategory.RESIDENCE
    assert home.poi_id == "home-u42"
    assert 0 <= home.x <= world.size_m


def test_pick_work_poi(world, rng):
    for _ in range(10):
        work = pick_work_poi(world, rng)
        assert work.category in (PoiCategory.PROFESSIONAL, PoiCategory.COLLEGE)


def test_generate_world_deterministic():
    a = generate_world(WorldConfig(n_pois=100), np.random.default_rng(3))
    b = generate_world(WorldConfig(n_pois=100), np.random.default_rng(3))
    assert a.pois == b.pois


def test_generate_world_rejects_zero_pois():
    with pytest.raises(ValueError):
        generate_world(WorldConfig(n_pois=0), np.random.default_rng(1))
