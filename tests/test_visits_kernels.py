"""Scalar vs vectorized stay-point kernels: exact (bit-level) parity.

The vectorized kernel must reproduce the scalar reference *exactly* —
same visit ids, same float64 centroids, same timestamps — for any
trace.  The property test throws randomised traces with recording gaps,
jitter and dwell-threshold edge cases at both kernels; the golden tests
anchor parity to the committed fixture through the full pipeline at
several worker counts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VisitConfig, extract_visits, resolved_kernel, validate
from repro.core.visits import KERNELS
from repro.io import load_dataset
from repro.model import GpsPoint, GpsTrace

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_study"

MIN = 60.0


def both_kernels(points, config_kwargs=None):
    kwargs = config_kwargs or {}
    scalar = extract_visits(points, "u0", VisitConfig(kernel="scalar", **kwargs))
    vector = extract_visits(points, "u0", VisitConfig(kernel="vectorized", **kwargs))
    return scalar, vector


def assert_identical(scalar, vector):
    # Dataclass equality on Visit compares every float field exactly —
    # bit-identity, not approximate agreement.
    assert vector == scalar


def test_kernel_knob_validation():
    assert set(KERNELS) == {"auto", "vectorized", "scalar"}
    assert resolved_kernel(VisitConfig()) == "vectorized"
    assert resolved_kernel(VisitConfig(kernel="auto")) == "vectorized"
    assert resolved_kernel(VisitConfig(kernel="scalar")) == "scalar"
    with pytest.raises(ValueError):
        VisitConfig(kernel="simd")


@st.composite
def traces(draw):
    """Randomised traces exercising the kernel's branchy edge cases.

    Interleaves stationary dwells (from sub-dwell to multi-window
    length), movement bursts and recording gaps; adds positional jitter
    around the roam-radius boundary so cluster membership decisions are
    razor-edge.
    """
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    n_phases = draw(st.integers(0, 8))
    t = 0.0
    x, y = 0.0, 0.0
    points = []
    for _ in range(n_phases):
        kind = draw(st.sampled_from(["dwell", "move", "gap"]))
        if kind == "gap":
            # Straddle the max_gap_s=600 boundary from both sides.
            t += draw(st.sampled_from([599.0, 600.0, 601.0, 4000.0]))
            continue
        n = draw(st.integers(1, 40))
        period = draw(st.sampled_from([30.0, 60.0, 90.0]))
        for _ in range(n):
            if kind == "move":
                x += float(rng.normal(200.0, 50.0))
                y += float(rng.normal(0.0, 50.0))
            else:
                # Jitter at the scale of the 80 m roam radius, so some
                # samples fall just inside and some just outside.
                x += float(rng.normal(0.0, 40.0))
                y += float(rng.normal(0.0, 40.0))
            points.append(GpsPoint(t=t, x=x, y=y))
            t += period
    return points


@given(traces())
@settings(max_examples=150, deadline=None)
def test_kernels_bit_identical_on_random_traces(points):
    scalar, vector = both_kernels(points)
    assert_identical(scalar, vector)


@given(traces())
@settings(max_examples=50, deadline=None)
def test_kernels_bit_identical_with_tight_thresholds(points):
    scalar, vector = both_kernels(
        points, {"dwell_s": 90.0, "roam_radius_m": 45.0, "max_gap_s": 120.0}
    )
    assert_identical(scalar, vector)


def test_kernels_agree_on_unsorted_input():
    rng = np.random.default_rng(3)
    pts = [
        GpsPoint(t=float(t), x=float(rng.normal(0, 30)), y=float(rng.normal(0, 30)))
        for t in rng.choice(np.arange(0.0, 3600.0, 60.0), size=40)
    ]
    scalar, vector = both_kernels(pts)
    assert_identical(scalar, vector)


def test_kernels_agree_on_trace_and_list_inputs():
    rng = np.random.default_rng(4)
    t = np.arange(0.0, 40 * MIN, MIN)
    trace = GpsTrace(t, rng.normal(0, 30, t.size), rng.normal(0, 30, t.size))
    from_trace = both_kernels(trace)
    from_list = both_kernels(trace.to_points())
    assert from_trace[0] == from_list[0]
    assert_identical(*from_trace)
    assert_identical(*from_list)


def test_window_growth_covers_long_stays():
    # A stay much longer than the first scan window forces several
    # window doublings; the fresh-cumsum rule must keep bit-identity.
    n = 600  # 10 hours of per-minute samples, one cluster
    rng = np.random.default_rng(5)
    trace = GpsTrace(
        np.arange(n) * MIN, rng.normal(0, 10, n), rng.normal(0, 10, n)
    )
    scalar, vector = both_kernels(trace)
    assert len(scalar) == 1
    assert_identical(scalar, vector)


@pytest.mark.parametrize("workers", [None, 2])
@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
def test_golden_pipeline_identical_for_all_kernels(workers, kernel):
    """Full pipeline on the committed fixture: every kernel × worker
    count reproduces the frozen expected counts and summary."""
    expected = json.loads((GOLDEN_DIR / "expected.json").read_text(encoding="utf-8"))
    report = validate(
        load_dataset(GOLDEN_DIR),
        visit_config=VisitConfig(kernel=kernel),
        workers=workers,
    )
    assert report.n_honest == expected["venn"]["honest"]
    assert report.n_extraneous == expected["venn"]["extraneous"]
    assert report.n_missing == expected["venn"]["missing"]
    assert report.summary() == expected["summary"]


def test_golden_visits_bit_identical_across_kernels():
    """Strongest form: every extracted visit equal field-for-field."""
    reports = {
        kernel: validate(
            load_dataset(GOLDEN_DIR), visit_config=VisitConfig(kernel=kernel)
        )
        for kernel in ("scalar", "vectorized")
    }
    scalar = reports["scalar"].dataset
    vector = reports["vectorized"].dataset
    assert set(scalar.users) == set(vector.users)
    for user_id in scalar.users:
        assert vector.users[user_id].visits == scalar.users[user_id].visits
