"""Monitor smoke: scrape a live serve run, then replay the dashboard.

CI's end-to-end exercise of the telemetry stack, runnable by hand too::

    PYTHONPATH=src python tools/monitor_smoke.py

Three acts, each failing loudly on regression:

1. Launch ``repro-study serve --scale S --telemetry DIR --metrics-port 0``
   as a subprocess, learn the ephemeral endpoint from its stderr, and
   scrape ``/metrics`` *while the replay is running* — the exposition
   must parse as OpenMetrics text and carry the serve instrument
   families plus process stats.
2. Run ``repro-study validate --store disk --telemetry DIR2`` and check
   the finished status file published the runtime scheduler figures
   (segments done, in-flight window, prefetch overlap).
3. Point ``repro-study monitor --once`` at both status files and require
   a rendered dashboard and a zero exit.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCALE = "0.1"


def cli(*argv: str) -> list:
    return [sys.executable, "-m", "repro.cli", *argv]


def fail(message: str) -> None:
    print(f"monitor smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def scrape_during_serve(tel_dir: Path) -> None:
    from repro.obs import parse_openmetrics

    proc = subprocess.Popen(
        cli("serve", "--scale", SCALE, "--quiet",
            "--telemetry", str(tel_dir), "--metrics-port", "0"),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    endpoint = None
    stderr_tail = []
    try:
        # The endpoint line is printed before the replay starts, so the
        # whole event feed remains as our scrape window.
        assert proc.stderr is not None
        for line in proc.stderr:
            stderr_tail.append(line)
            if line.startswith("telemetry: http"):
                endpoint = line.split()[1].rsplit("/metrics", 1)[0]
                break
        if endpoint is None:
            proc.wait()
            fail("serve never announced a metrics endpoint:\n"
                 + "".join(stderr_tail))
        text = urllib.request.urlopen(f"{endpoint}/metrics", timeout=30)
        families = parse_openmetrics(text.read().decode("utf-8"))
        # Families the serve instruments always expose, from the very
        # first sample (watermarks appear only once a lane has seen an
        # event time — those are checked on the finished status below).
        for family in (
            "repro_serve_events_ingested_total",
            "repro_serve_events_processed_total",
            "repro_serve_verdicts_emitted_total",
            "repro_serve_backlog_events",
            "repro_serve_lane_queue_depth",
            "repro_process_resident_memory_kb",
        ):
            if family not in families:
                fail(f"family {family} missing from live /metrics scrape")
        status = json.loads(
            urllib.request.urlopen(f"{endpoint}/live", timeout=30)
            .read().decode("utf-8")
        )
        if status["command"] != "serve" or status["schema"] != 1:
            fail(f"unexpected /live status: {status!r}")
    finally:
        # Drain so a chatty run cannot dead-lock the pipe, then reap.
        remaining = proc.stderr.read() if proc.stderr else ""
        code = proc.wait()
    if code != 0:
        fail(f"serve exited {code}:\n" + "".join(stderr_tail) + remaining)
    final = json.loads((tel_dir / "live.json").read_text(encoding="utf-8"))
    gauges = final["metrics"]["gauges"]
    if not final["finished"]:
        fail("serve left live.json unfinished")
    for name in ("serve.watermark_s", "serve.watermark_wall_lag_s"):
        if name not in gauges:
            fail(f"gauge {name} missing from finished serve status")
    print("monitor smoke: live /metrics scrape ok "
          f"({len(families)} families)")


def disk_validate_with_telemetry(tel_dir: Path, store_dir: Path) -> None:
    code = subprocess.run(
        cli("validate", "--scale", SCALE, "--store", "disk", "--quiet",
            "--workers", "2", "--segment-users", "10",
            "--store-dir", str(store_dir), "--telemetry", str(tel_dir)),
        stdout=subprocess.DEVNULL,
    ).returncode
    if code != 0:
        fail(f"validate --store disk exited {code}")
    status = json.loads((tel_dir / "live.json").read_text(encoding="utf-8"))
    if not status["finished"]:
        fail("disk validate left live.json unfinished")
    gauges = status["metrics"]["gauges"]
    for name in ("store.segments_done", "store.users_done",
                 "store.inflight_segments", "store.prefetch_overlap"):
        if name not in gauges:
            fail(f"runtime gauge {name} missing from finished status")
    if gauges["store.segments_done"] != gauges["store.segments_planned"]:
        fail("segments_done != segments_planned on a finished run")
    print("monitor smoke: disk-validate runtime figures ok")


def monitor_once(tel_dir: Path) -> None:
    result = subprocess.run(
        cli("monitor", str(tel_dir), "--once"),
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        fail(f"monitor --once exited {result.returncode}: {result.stderr}")
    if "repro live telemetry" not in result.stdout:
        fail(f"monitor rendered no dashboard:\n{result.stdout}")
    print(f"monitor smoke: dashboard ok for {tel_dir.name}")


def main() -> int:
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        serve_tel = root / "serve-tel"
        disk_tel = root / "disk-tel"
        scrape_during_serve(serve_tel)
        disk_validate_with_telemetry(disk_tel, root / "store")
        monitor_once(serve_tel)
        monitor_once(disk_tel)
    print(f"monitor smoke: PASS ({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
