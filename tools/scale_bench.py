"""Scale-bench driver: one pipeline phase per process, RSS measured.

``resource.getrusage`` reports the *process-lifetime* peak RSS, so a
meaningful memory comparison needs each phase in its own process — a
generate pass that materialised the study would poison every later
reading.  This driver runs exactly one phase and prints one JSON line
to stdout; ``benchmarks/test_scale.py`` (and anyone reproducing the
numbers by hand) composes phases from fresh invocations::

    PYTHONPATH=src python tools/scale_bench.py generate \
        --dir /tmp/scale-store --users 100000 --segment-users 1000
    PYTHONPATH=src python tools/scale_bench.py validate-disk \
        --dir /tmp/scale-store --workers 4
    PYTHONPATH=src python tools/scale_bench.py validate-memory \
        --dir /tmp/scale-store

Uses the vectorized ``repro.synth.scalegen`` generator (benchmark
throughput, not paper fidelity).
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time


def peak_rss_kb() -> int:
    """Process-lifetime peak resident set size, in KiB (Linux ru_maxrss)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def cmd_generate(args: argparse.Namespace) -> dict:
    from repro.synth import generate_scale_store

    start = time.perf_counter()
    store = generate_scale_store(
        args.dir,
        n_users=args.users,
        segment_users=args.segment_users,
        points_per_user=args.points_per_user,
        checkins_per_user=args.checkins_per_user,
    )
    return {
        "wall_s": time.perf_counter() - start,
        "users": store.n_users,
        "segments": len(store.segments),
        "n_gps_points": store.n_gps_points,
        "n_checkins": store.n_checkins,
    }


def open_store(args: argparse.Namespace):
    from repro.store import StudyStore

    return StudyStore.open(args.dir)


def cmd_validate_disk(args: argparse.Namespace) -> dict:
    from repro.core import validate_store

    store = open_store(args)
    segment_kb = store.max_segment_nbytes() // 1024
    start = time.perf_counter()
    summary = validate_store(
        store,
        workers=args.workers,
        inflight_segments=args.inflight_segments,
    )
    return {
        "wall_s": time.perf_counter() - start,
        "users": summary.n_users,
        "segments": summary.n_segments,
        "inflight_segments": args.inflight_segments,
        "max_segment_kb": segment_kb,
        "n_honest": summary.n_honest,
        "n_extraneous": summary.n_extraneous,
        "n_missing": summary.n_missing,
    }


def cmd_validate_memory(args: argparse.Namespace) -> dict:
    from repro.core import validate

    store = open_store(args)
    start = time.perf_counter()
    report = validate(store.load_dataset(), workers=args.workers)
    return {
        "wall_s": time.perf_counter() - start,
        "users": len(report.dataset.users),
        "segments": len(store.segments),
        "n_honest": report.matching.n_honest,
        "n_extraneous": report.matching.n_extraneous,
        "n_missing": report.matching.n_missing,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode", required=True)

    gen = sub.add_parser("generate", help="build a scalegen store")
    gen.add_argument("--dir", required=True)
    gen.add_argument("--users", type=int, required=True)
    gen.add_argument("--segment-users", type=int, default=1000)
    gen.add_argument("--points-per-user", type=int, default=288)
    gen.add_argument("--checkins-per-user", type=int, default=8)
    gen.set_defaults(run=cmd_generate)

    for mode, run in (("validate-disk", cmd_validate_disk),
                      ("validate-memory", cmd_validate_memory)):
        val = sub.add_parser(mode, help=f"{mode} over an existing store")
        val.add_argument("--dir", required=True)
        val.add_argument("--workers", type=int, default=None)
        if mode == "validate-disk":
            val.add_argument(
                "--inflight-segments", type=int, default=None,
                help="pipeline up to N segments concurrently "
                     "(default: 1 serial, sized from --workers otherwise)",
            )
        val.set_defaults(run=run)

    args = parser.parse_args(argv)
    result = args.run(args)
    result["mode"] = args.mode
    result["peak_rss_kb"] = peak_rss_kb()
    json.dump(result, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
