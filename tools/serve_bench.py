"""Serving-bench driver: sustained ingest throughput and latency.

Runs one complete serving session over a generated Primary study and
prints one JSON record to stdout; ``benchmarks/test_serving.py`` (and
anyone reproducing ``BENCH_serving.json`` by hand) composes runs from
fresh invocations::

    PYTHONPATH=src python tools/serve_bench.py --scale 0.15 --workers 1
    PYTHONPATH=src python tools/serve_bench.py --scale 0.15 --workers 4

The event stream is materialised before the clock starts, so the
numbers measure the service (settlement scans, kernel calls, lane
hand-off), not the generator.  Latency is what the *caller* of
``ingest()`` observes per event: at ``--workers 1`` that includes any
settlement work the event triggers; at higher worker counts ingest is
an enqueue and the work overlaps, which is exactly the serving story
the bench records.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run(args: argparse.Namespace) -> dict:
    from repro.serve import ServeConfig, ValidationService
    from repro.synth import generate_dataset, primary_config, replay_events

    dataset = generate_dataset(primary_config().scaled(args.scale))
    events = list(replay_events(dataset))
    n_checkins = sum(1 for e in events if e.kind == "checkin")
    n_gps = sum(1 for e in events if e.kind == "gps")

    verdicts = 0

    def sink(verdict):
        nonlocal verdicts
        verdicts += 1

    service = ValidationService(
        dataset.pois,
        ServeConfig(),
        name=dataset.name,
        workers=args.workers,
        sink=sink,
    )
    latencies = []
    start = time.perf_counter()
    for event in events:
        t0 = time.perf_counter()
        service.ingest(event)
        latencies.append(time.perf_counter() - t0)
    ingest_wall = time.perf_counter() - start
    summary = service.finish()
    total_wall = time.perf_counter() - start

    latencies.sort()
    return {
        "scale": args.scale,
        "workers": service.workers,
        "users": summary.n_users,
        "events": summary.n_events,
        "checkins": n_checkins,
        "gps": n_gps,
        "verdicts": summary.n_verdicts,
        "chunks": summary.n_chunks,
        "ingest_wall_s": ingest_wall,
        "total_wall_s": total_wall,
        "events_per_s": summary.n_events / total_wall if total_wall else 0.0,
        "checkins_per_s": n_checkins / total_wall if total_wall else 0.0,
        "p50_ingest_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ingest_ms": percentile(latencies, 0.99) * 1000.0,
        "max_ingest_ms": percentile(latencies, 1.0) * 1000.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.15,
                        help="Primary study population scale (default 0.15)")
    parser.add_argument("--workers", type=int, default=1,
                        help="ingest lanes (default 1 = inline)")
    args = parser.parse_args(argv)
    record = run(args)
    json.dump(record, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
