"""Serving-bench driver: sustained ingest throughput and latency.

Runs one complete serving session over a generated Primary study and
prints one JSON record to stdout; ``benchmarks/test_serving.py`` (and
anyone reproducing ``BENCH_serving.json`` by hand) composes runs from
fresh invocations::

    PYTHONPATH=src python tools/serve_bench.py --scale 0.15 --workers 1
    PYTHONPATH=src python tools/serve_bench.py --scale 0.15 --workers 4

The event stream is materialised before the clock starts, so the
numbers measure the service (settlement scans, kernel calls, lane
hand-off), not the generator.  Latency is what the *caller* of
``ingest()`` observes per event: at ``--workers 1`` that includes any
settlement work the event triggers; at higher worker counts ingest is
an enqueue and the work overlaps, which is exactly the serving story
the bench records.

``--telemetry`` arms the service's :class:`~repro.serve.ServeTelemetry`
hooks plus a GC-pause tracker and attributes the worst ingest stall:
per-lane queue-depth quantiles, the queue depth and cumulative GC pause
time *at the max-latency event*, and whether that event landed inside a
garbage collection.  This is the instrumentation that diagnosed the
4-lane ``max_ingest_ms`` spike (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run(args: argparse.Namespace) -> dict:
    from repro.serve import ServeConfig, ValidationService
    from repro.synth import generate_dataset, primary_config, replay_events

    dataset = generate_dataset(primary_config().scaled(args.scale))
    events = list(replay_events(dataset))
    n_checkins = sum(1 for e in events if e.kind == "checkin")
    n_gps = sum(1 for e in events if e.kind == "gps")

    verdicts = 0

    def sink(verdict):
        nonlocal verdicts
        verdicts += 1

    service = ValidationService(
        dataset.pois,
        ServeConfig(),
        name=dataset.name,
        workers=args.workers,
        sink=sink,
        telemetry=args.telemetry,
    )

    # GC-pause tracker: attributes ingest stalls to collections.  The
    # callback pair brackets every collection on whichever thread runs
    # it — under the GIL that pause is felt by the ingest caller too.
    gc_stats = {"t0": 0.0, "count": 0, "total_s": 0.0, "max_s": 0.0}

    def gc_callback(phase, info):
        if phase == "start":
            gc_stats["t0"] = time.perf_counter()
        else:
            pause = time.perf_counter() - gc_stats["t0"]
            gc_stats["count"] += 1
            gc_stats["total_s"] += pause
            gc_stats["max_s"] = max(gc_stats["max_s"], pause)

    worst = {"latency_ms": 0.0}
    tel = service.telemetry
    if args.telemetry:
        gc.callbacks.append(gc_callback)

    latencies = []
    start = time.perf_counter()
    try:
        if args.telemetry:
            for i, event in enumerate(events):
                gc_count = gc_stats["count"]
                gc_s = gc_stats["total_s"]
                t0 = time.perf_counter()
                service.ingest(event)
                dt = time.perf_counter() - t0
                latencies.append(dt)
                if dt * 1000.0 > worst["latency_ms"]:
                    worst = {
                        "index": i,
                        "kind": event.kind,
                        "latency_ms": dt * 1000.0,
                        "gc_collections_during": gc_stats["count"] - gc_count,
                        "gc_pause_ms_during": (
                            (gc_stats["total_s"] - gc_s) * 1000.0
                        ),
                        "queue_depths": service.queue_depths(),
                    }
                if i % 1024 == 0 and tel is not None:
                    tel.collect()  # one depth-quantile observation
        else:
            for event in events:
                t0 = time.perf_counter()
                service.ingest(event)
                latencies.append(time.perf_counter() - t0)
        ingest_wall = time.perf_counter() - start
        summary = service.finish()
        total_wall = time.perf_counter() - start
    finally:
        if args.telemetry:
            gc.callbacks.remove(gc_callback)

    latencies.sort()
    record = {
        "scale": args.scale,
        "workers": service.workers,
        "users": summary.n_users,
        "events": summary.n_events,
        "checkins": n_checkins,
        "gps": n_gps,
        "verdicts": summary.n_verdicts,
        "chunks": summary.n_chunks,
        "ingest_wall_s": ingest_wall,
        "total_wall_s": total_wall,
        "events_per_s": summary.n_events / total_wall if total_wall else 0.0,
        "checkins_per_s": n_checkins / total_wall if total_wall else 0.0,
        "p50_ingest_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ingest_ms": percentile(latencies, 0.99) * 1000.0,
        "max_ingest_ms": percentile(latencies, 1.0) * 1000.0,
    }
    if args.telemetry:
        lane_depths = {}
        if tel is not None:
            for name, hist_summary in tel.collect()["histograms"].items():
                lane_depths[name] = hist_summary
        record["telemetry"] = {
            "gc_collections": gc_stats["count"],
            "gc_pause_total_ms": gc_stats["total_s"] * 1000.0,
            "gc_pause_max_ms": gc_stats["max_s"] * 1000.0,
            "max_latency_event": worst,
            "lane_queue_depth_samples": lane_depths,
        }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.15,
                        help="Primary study population scale (default 0.15)")
    parser.add_argument("--workers", type=int, default=1,
                        help="ingest lanes (default 1 = inline)")
    parser.add_argument("--telemetry", action="store_true",
                        help="arm ServeTelemetry + GC-pause attribution and "
                             "record per-lane queue-depth stats (diagnosis "
                             "mode; adds per-event bookkeeping overhead)")
    args = parser.parse_args(argv)
    record = run(args)
    json.dump(record, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
