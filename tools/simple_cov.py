"""Stdlib fallback line-coverage runner for environments without pytest-cov.

``make coverage`` prefers ``pytest --cov`` (wired in pyproject); when
pytest-cov is not importable — e.g. an offline container — this script
measures line coverage of ``src/repro`` with a ``sys.settrace`` hook and
enforces the same floor.  Caveats versus real coverage.py:

* lines executed only inside process-pool workers are not seen (the
  tracer is per-process), so parallel-only branches read as uncovered;
* "executable lines" come from compiled code objects (``co_lines``),
  which is close to — but not identical with — coverage.py's arc
  analysis.

Usage::

    PYTHONPATH=src python tools/simple_cov.py [--fail-under 80] [pytest args...]

Exit status: pytest's own failure status if tests fail, else 1 when
total coverage is below the floor, else 0.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path
from typing import Dict, Set

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_PREFIX = str(REPO_ROOT / "src" / "repro")

_executed: Dict[str, Set[int]] = {}


def _local_tracer(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_tracer


def _global_tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC_PREFIX):
        return None
    _executed.setdefault(filename, set())
    if event == "line":
        _executed[filename].add(frame.f_lineno)
    return _local_tracer


def executable_lines(path: Path) -> Set[int]:
    """Line numbers with executable code, from the compiled code objects."""
    source = path.read_text(encoding="utf-8")
    lines: Set[int] = set()
    stack = [compile(source, str(path), "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # Docstring-only / def-line noise is shared with executed sets, so
    # no filtering: both sides come from the same co_lines tables.
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fail-under", type=float, default=80.0,
                        help="minimum total coverage percentage (default 80)")
    parser.add_argument("--top", type=int, default=15,
                        help="how many least-covered modules to list")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args(argv)

    import pytest

    sys.settrace(_global_tracer)
    threading.settrace(_global_tracer)
    try:
        status = pytest.main(["-q", "-p", "no:cacheprovider", *args.pytest_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if status != 0:
        return int(status)

    rows = []
    total_hit = total_lines = 0
    for path in sorted(Path(SRC_PREFIX).rglob("*.py")):
        lines = executable_lines(path)
        if not lines:
            continue
        hit = _executed.get(str(path), set()) & lines
        total_hit += len(hit)
        total_lines += len(lines)
        rel = os.path.relpath(path, REPO_ROOT)
        rows.append((len(hit) / len(lines), rel, len(hit), len(lines)))

    rows.sort()
    print("\nleast-covered modules (approximate, serial paths only):")
    for fraction, rel, hit, n_lines in rows[: args.top]:
        print(f"  {100 * fraction:5.1f}%  {rel}  ({hit}/{n_lines} lines)")
    total = 100 * total_hit / total_lines if total_lines else 0.0
    print(f"\nTOTAL {total:.1f}% ({total_hit}/{total_lines} lines), floor {args.fail_under:.0f}%")
    if total < args.fail_under:
        print("coverage below floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
